#include <gtest/gtest.h>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gp/quadratic_ip.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> design(std::uint64_t seed = 111,
                                 Index cells = 400) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

/// HPWL of center coordinates produced by the IP.
double hpwlOfCenters(const Database& db, const std::vector<double>& x,
                     const std::vector<double>& y) {
  std::vector<double> llx(db.numMovable()), lly(db.numMovable());
  for (Index i = 0; i < db.numMovable(); ++i) {
    llx[i] = x[i] - db.cellWidth(i) / 2;
    lly[i] = y[i] - db.cellHeight(i) / 2;
  }
  return hpwl(db, llx, lly);
}

TEST(QuadraticIpTest, ImprovesHpwlOverCenterStart) {
  auto db = design();
  const Index n = db->numMovable();
  const Box<Coord>& die = db->dieArea();
  std::vector<double> x(n, die.centerX());
  std::vector<double> y(n, die.centerY());
  const double before = hpwlOfCenters(*db, x, y);
  quadraticInitialPlacement<double>(*db, QuadraticIpOptions{}, x, y);
  const double after = hpwlOfCenters(*db, x, y);
  // All-at-center already has near-minimal movable-movable length; the
  // quadratic solve must reduce the fixed-pin (pad) contributions.
  EXPECT_LT(after, before);
}

TEST(QuadraticIpTest, StaysInsideDie) {
  auto db = design(113);
  const Index n = db->numMovable();
  const Box<Coord>& die = db->dieArea();
  std::vector<double> x(n, die.centerX());
  std::vector<double> y(n, die.centerY());
  quadraticInitialPlacement<double>(*db, QuadraticIpOptions{}, x, y);
  for (Index i = 0; i < n; ++i) {
    EXPECT_GE(x[i] - db->cellWidth(i) / 2, die.xl - 1e-6);
    EXPECT_LE(x[i] + db->cellWidth(i) / 2, die.xh + 1e-6);
    EXPECT_GE(y[i] - db->cellHeight(i) / 2, die.yl - 1e-6);
    EXPECT_LE(y[i] + db->cellHeight(i) / 2, die.yh + 1e-6);
  }
}

TEST(QuadraticIpTest, DeterministicAndConverging) {
  auto db = design(117);
  const Index n = db->numMovable();
  const Box<Coord>& die = db->dieArea();
  std::vector<double> x1(n, die.centerX()), y1(n, die.centerY());
  std::vector<double> x2(n, die.centerX()), y2(n, die.centerY());
  quadraticInitialPlacement<double>(*db, QuadraticIpOptions{}, x1, y1);
  quadraticInitialPlacement<double>(*db, QuadraticIpOptions{}, x2, y2);
  for (Index i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(x1[i], x2[i]);
    ASSERT_DOUBLE_EQ(y1[i], y2[i]);
  }
  // More B2B rounds should not make quality (much) worse.
  QuadraticIpOptions deep;
  deep.b2bRounds = 60;
  std::vector<double> x3(n, die.centerX()), y3(n, die.centerY());
  quadraticInitialPlacement<double>(*db, deep, x3, y3);
  EXPECT_LE(hpwlOfCenters(*db, x3, y3),
            hpwlOfCenters(*db, x1, y1) * 1.05);
}

TEST(QuadraticIpTest, PullsCellsTowardFixedAnchors) {
  // Single movable cell on a net with one pad: the solve should put the
  // cell (near) the pad.
  Database db;
  const Index c = db.addCell("c", 4, 12, true);
  const Index pad = db.addCell("p", 1, 12, false);
  const Index net = db.addNet("n");
  db.addPin(net, c, 0, 0);
  db.addPin(net, pad, 0, 0);
  db.setDieArea({0, 0, 600, 600});
  for (int r = 0; r < 50; ++r) {
    db.addRow({static_cast<Coord>(r * 12), 12, 0, 600, 1});
  }
  db.setCellPosition(pad, 500, 240);
  db.setCellPosition(c, 10, 10);
  db.finalize();

  std::vector<double> x{300.0};
  std::vector<double> y{300.0};
  quadraticInitialPlacement<double>(db, QuadraticIpOptions{}, x, y);
  EXPECT_NEAR(x[0], 500.5, 2.0);  // pad pin center
  EXPECT_NEAR(y[0], 246.0, 2.0);
}

TEST(QuadraticIpTest, SinglePrecisionWorks) {
  auto db = design(119, 200);
  const Index n = db->numMovable();
  const Box<Coord>& die = db->dieArea();
  std::vector<float> x(n, static_cast<float>(die.centerX()));
  std::vector<float> y(n, static_cast<float>(die.centerY()));
  quadraticInitialPlacement<float>(*db, QuadraticIpOptions{}, x, y);
  for (Index i = 0; i < n; ++i) {
    ASSERT_TRUE(std::isfinite(x[i]) && std::isfinite(y[i]));
  }
}

}  // namespace
}  // namespace dreamplace
