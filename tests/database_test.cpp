#include <gtest/gtest.h>

#include "db/database.h"

namespace dreamplace {
namespace {

/// Builds a tiny 4-cell, 2-net design used across database tests:
///   movable a (8x12), fixed pad p (1x12), movable b (4x12), movable c.
///   net n1: a, b, p;  net n2: b, c.
Database makeTinyDb() {
  Database db;
  const Index a = db.addCell("a", 8, 12, true);
  const Index p = db.addCell("p", 1, 12, false);  // fixed added in middle
  const Index b = db.addCell("b", 4, 12, true);
  const Index c = db.addCell("c", 6, 12, true);
  const Index n1 = db.addNet("n1");
  const Index n2 = db.addNet("n2");
  db.addPin(n1, a, 1.0, 2.0);
  db.addPin(n1, b, 0.0, 0.0);
  db.addPin(n1, p, 0.0, 0.0);
  db.addPin(n2, b, -1.0, 0.0);
  db.addPin(n2, c, 0.5, -0.5);
  db.setDieArea({0, 0, 120, 48});
  for (int r = 0; r < 4; ++r) {
    db.addRow({static_cast<Coord>(r * 12), 12, 0, 120, 1});
  }
  db.setCellPosition(a, 0, 0);
  db.setCellPosition(p, 100, 0);
  db.setCellPosition(b, 20, 12);
  db.setCellPosition(c, 40, 24);
  db.finalize();
  return db;
}

TEST(DatabaseTest, CountsAndPartitioning) {
  Database db = makeTinyDb();
  EXPECT_EQ(db.numCells(), 4);
  EXPECT_EQ(db.numMovable(), 3);
  EXPECT_EQ(db.numFixed(), 1);
  EXPECT_EQ(db.numNets(), 2);
  EXPECT_EQ(db.numPins(), 5);
  // Movable-first ordering: indices [0,3) movable, 3 fixed.
  for (Index i = 0; i < 3; ++i) {
    EXPECT_TRUE(db.isMovable(i));
  }
  EXPECT_FALSE(db.isMovable(3));
  EXPECT_EQ(db.cellName(3), "p");
}

TEST(DatabaseTest, PositionsSurviveReordering) {
  Database db = makeTinyDb();
  // The fixed pad was added second but must keep its position.
  const Index p = db.findCell("p");
  ASSERT_NE(p, kInvalidIndex);
  EXPECT_DOUBLE_EQ(db.cellX(p), 100);
  EXPECT_DOUBLE_EQ(db.cellY(p), 0);
  const Index b = db.findCell("b");
  EXPECT_DOUBLE_EQ(db.cellX(b), 20);
  EXPECT_DOUBLE_EQ(db.cellY(b), 12);
}

TEST(DatabaseTest, NetPinCsr) {
  Database db = makeTinyDb();
  const Index n1 = 0;  // nets keep insertion order
  EXPECT_EQ(db.netName(n1), "n1");
  EXPECT_EQ(db.netDegree(n1), 3);
  EXPECT_EQ(db.netDegree(1), 2);
  // Every pin of n1 references n1.
  for (Index p = db.netPinBegin(n1); p < db.netPinEnd(n1); ++p) {
    EXPECT_EQ(db.pinNet(p), n1);
  }
}

TEST(DatabaseTest, CellPinCsr) {
  Database db = makeTinyDb();
  const Index b = db.findCell("b");
  // b appears on both nets.
  EXPECT_EQ(db.cellPinEnd(b) - db.cellPinBegin(b), 2);
  std::set<Index> nets;
  for (Index s = db.cellPinBegin(b); s < db.cellPinEnd(b); ++s) {
    const Index pin = db.cellPinAt(s);
    EXPECT_EQ(db.pinCell(pin), b);
    nets.insert(db.pinNet(pin));
  }
  EXPECT_EQ(nets.size(), 2u);
}

TEST(DatabaseTest, PinPositionsFromCenterOffsets) {
  Database db = makeTinyDb();
  const Index a = db.findCell("a");
  // a at (0,0), 8x12, pin offset (1,2) from center => pin at (5, 8).
  Index pin = kInvalidIndex;
  for (Index s = db.cellPinBegin(a); s < db.cellPinEnd(a); ++s) {
    pin = db.cellPinAt(s);
  }
  ASSERT_NE(pin, kInvalidIndex);
  EXPECT_DOUBLE_EQ(db.pinX(pin), 0 + 4 + 1);
  EXPECT_DOUBLE_EQ(db.pinY(pin), 0 + 6 + 2);
}

TEST(DatabaseTest, FindCell) {
  Database db = makeTinyDb();
  EXPECT_NE(db.findCell("a"), kInvalidIndex);
  EXPECT_NE(db.findCell("c"), kInvalidIndex);
  EXPECT_EQ(db.findCell("nope"), kInvalidIndex);
  EXPECT_EQ(db.findCell(""), kInvalidIndex);
}

TEST(DatabaseTest, Areas) {
  Database db = makeTinyDb();
  EXPECT_DOUBLE_EQ(db.totalMovableArea(), (8 + 4 + 6) * 12.0);
  EXPECT_DOUBLE_EQ(db.totalFixedArea(), 1 * 12.0);
  const double whitespace = 120.0 * 48 - 12;
  EXPECT_NEAR(db.utilization(), (8 + 4 + 6) * 12.0 / whitespace, 1e-12);
}

TEST(DatabaseTest, FixedCellsOutsideDieClippedInArea) {
  Database db;
  db.addCell("m", 10, 10, true);
  const Index f = db.addCell("f", 20, 20, false);
  const Index n = db.addNet("n");
  db.addPin(n, 0, 0, 0);
  db.addPin(n, f, 0, 0);
  db.setDieArea({0, 0, 100, 100});
  db.addRow({0, 10, 0, 100, 1});
  db.setCellPosition(f, 90, 90);  // hangs over the boundary
  db.finalize();
  EXPECT_DOUBLE_EQ(db.totalFixedArea(), 100.0);  // only 10x10 inside
}

TEST(DatabaseTest, RowAccessors) {
  Database db = makeTinyDb();
  EXPECT_EQ(db.rows().size(), 4u);
  EXPECT_DOUBLE_EQ(db.rowHeight(), 12);
  EXPECT_DOUBLE_EQ(db.siteWidth(), 1);
}

}  // namespace
}  // namespace dreamplace
