#include <gtest/gtest.h>

#include <filesystem>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "io/bookshelf_reader.h"
#include "io/bookshelf_writer.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> flowDesign(std::uint64_t seed, Index cells = 800,
                                     Index macros = 0) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numMacros = macros;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

PlacerOptions fastFlow() {
  PlacerOptions options;
  options.gp.maxIterations = 400;
  options.gp.binsMax = 64;
  options.dp.passes = 2;
  return options;
}

class PrecisionFlowTest : public ::testing::TestWithParam<Precision> {};

TEST_P(PrecisionFlowTest, FullFlowProducesLegalPlacement) {
  auto db = flowDesign(101);
  PlacerOptions options = fastFlow();
  options.precision = GetParam();
  const FlowResult result = placeDesign(*db, options);
  EXPECT_TRUE(result.legal);
  EXPECT_LT(result.overflow, 0.10);
  EXPECT_GT(result.hpwl, 0.0);
  // DP must not be worse than LG output.
  EXPECT_LE(result.hpwl, result.hpwlLegal + 1e-6);
  EXPECT_TRUE(checkLegality(*db).legal);
}

INSTANTIATE_TEST_SUITE_P(Precisions, PrecisionFlowTest,
                         ::testing::Values(Precision::kFloat32,
                                           Precision::kFloat64),
                         [](const auto& info) {
                           return info.param == Precision::kFloat32
                                      ? "Float32"
                                      : "Float64";
                         });

TEST(FlowTest, BeatsAnchoredReferencePlacement) {
  auto db = flowDesign(103);
  const double reference = anchoredHpwlBound(*db);
  const FlowResult result = placeDesign(*db, fastFlow());
  EXPECT_LT(result.hpwl, reference);
}

TEST(FlowTest, StageTimesAccounted) {
  auto db = flowDesign(107, 500);
  const FlowResult result = placeDesign(*db, fastFlow());
  EXPECT_GT(result.gpSeconds, 0.0);
  EXPECT_GT(result.lgSeconds, 0.0);
  EXPECT_GT(result.dpSeconds, 0.0);
  EXPECT_GE(result.totalSeconds,
            result.gpSeconds + result.lgSeconds + result.dpSeconds - 0.1);
}

TEST(FlowTest, WorksWithMacros) {
  auto db = flowDesign(109, 900, /*macros=*/6);
  const FlowResult result = placeDesign(*db, fastFlow());
  EXPECT_TRUE(result.legal);
  EXPECT_LT(result.overflow, 0.12);
}

TEST(FlowTest, SkipDetailedPlacement) {
  auto db = flowDesign(113, 400);
  PlacerOptions options = fastFlow();
  options.runDetailedPlacement = false;
  const FlowResult result = placeDesign(*db, options);
  EXPECT_TRUE(result.legal);
  EXPECT_DOUBLE_EQ(result.hpwl, result.hpwlLegal);
  EXPECT_GE(result.dpSeconds, 0.0);
}

TEST(FlowTest, RoutabilityModeProducesMetrics) {
  GeneratorConfig cfg;
  cfg.numCells = 600;
  cfg.utilization = 0.55;
  cfg.seed = 127;
  auto db = generateNetlist(cfg);
  PlacerOptions options = fastFlow();
  options.routability = true;
  options.routabilityOptions.maxRounds = 2;
  options.routabilityOptions.router.gridX = 24;
  options.routabilityOptions.router.gridY = 24;
  const FlowResult result = placeDesign(*db, options);
  EXPECT_TRUE(result.legal);
  EXPECT_GE(result.rc, 100.0);
  EXPECT_GE(result.sHpwl, result.hpwl - 1e-9);
  EXPECT_GT(result.nlSeconds, 0.0);
}

TEST(FlowTest, ResultRoundTripsThroughBookshelf) {
  namespace fs = std::filesystem;
  auto db = flowDesign(131, 400);
  placeDesign(*db, fastFlow());
  const fs::path dir = fs::temp_directory_path() / "dp_flow_roundtrip";
  fs::remove_all(dir);
  writeBookshelf(*db, dir.string(), "placed");
  auto loaded = readBookshelf((dir / "placed.aux").string());
  EXPECT_NEAR(hpwl(*loaded), hpwl(*db), 1e-6 * hpwl(*db));
  EXPECT_TRUE(checkLegality(*loaded).legal);
  fs::remove_all(dir);
}

TEST(FlowTest, DeterministicEndToEnd) {
  auto db1 = flowDesign(137, 400);
  auto db2 = flowDesign(137, 400);
  const FlowResult r1 = placeDesign(*db1, fastFlow());
  const FlowResult r2 = placeDesign(*db2, fastFlow());
  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
  EXPECT_EQ(r1.gpIterations, r2.gpIterations);
}

// ---------------------------------------------------------------------------
// PlacerOptions::validate()
// ---------------------------------------------------------------------------

/// The thrown message should tell the user which knob is wrong.
void expectValidateFails(const PlacerOptions& options,
                         const std::string& expected_fragment) {
  try {
    options.validate();
    FAIL() << "expected validate() to throw for " << expected_fragment;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(expected_fragment),
              std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(PlacerOptionsValidateTest, DefaultsAreValid) {
  PlacerOptions options;
  EXPECT_NO_THROW(options.validate());
  EXPECT_NO_THROW(fastFlow().validate());
}

TEST(PlacerOptionsValidateTest, RejectsBadGpKnobs) {
  PlacerOptions options;
  options.gp.targetDensity = 1.5;
  expectValidateFails(options, "targetDensity");

  options = PlacerOptions();
  options.gp.targetDensity = 0.0;
  expectValidateFails(options, "targetDensity");

  options = PlacerOptions();
  options.gp.binsMax = 0;
  expectValidateFails(options, "binsMax");

  options = PlacerOptions();
  options.gp.stopOverflow = 0.0;
  expectValidateFails(options, "stopOverflow");

  options = PlacerOptions();
  options.gp.maxIterations = 0;
  expectValidateFails(options, "maxIterations");

  options = PlacerOptions();
  options.gp.minIterations = 500;
  options.gp.maxIterations = 100;
  expectValidateFails(options, "minIterations");

  options = PlacerOptions();
  options.gp.lambdaUpdateEvery = 0;
  expectValidateFails(options, "lambdaUpdateEvery");

  options = PlacerOptions();
  options.gp.densitySubdivision = 0;
  expectValidateFails(options, "densitySubdivision");

  options = PlacerOptions();
  options.gp.noiseRatio = -0.1;
  expectValidateFails(options, "noiseRatio");
}

TEST(PlacerOptionsValidateTest, RejectsBadSolverLearningRate) {
  PlacerOptions options;
  options.gp.solver = SolverKind::kAdam;
  options.gp.lr = 0.0;
  expectValidateFails(options, "gp.lr");

  // Nesterov derives its own step size, so lr is not consulted.
  options = PlacerOptions();
  options.gp.solver = SolverKind::kNesterov;
  options.gp.lr = 0.0;
  EXPECT_NO_THROW(options.validate());

  options = PlacerOptions();
  options.gp.lrDecay = 0.0;
  expectValidateFails(options, "lrDecay");
}

TEST(PlacerOptionsValidateTest, RejectsInconsistentFences) {
  PlacerOptions options;
  options.gp.cellFence = {0, 1};
  expectValidateFails(options, "fences");

  options = PlacerOptions();
  options.gp.fences = {{{0, 0, 10, 10}}};
  options.gp.cellFence = {0, 2};  // 2 is out of range with one fence
  expectValidateFails(options, "cellFence");

  options = PlacerOptions();
  options.gp.fences = {{{0, 0, 10, 10}}};
  options.gp.cellFence = {0, 1, 0};
  EXPECT_NO_THROW(options.validate());
}

TEST(PlacerOptionsValidateTest, RejectsBadRoutabilityConfig) {
  PlacerOptions options;
  options.routability = true;
  options.routabilityOptions.router.gridX = 0;
  expectValidateFails(options, "gridX");

  options = PlacerOptions();
  options.routability = true;
  options.routabilityOptions.inflationTrigger = 1.5;
  expectValidateFails(options, "inflationTrigger");

  options = PlacerOptions();
  options.routability = true;
  options.routabilityOptions.maxRounds = 0;
  expectValidateFails(options, "maxRounds");

  // The same knobs are ignored when routability mode is off.
  options = PlacerOptions();
  options.routability = false;
  options.routabilityOptions.maxRounds = 0;
  EXPECT_NO_THROW(options.validate());
}

TEST(PlacerOptionsValidateTest, ReportsEveryViolationAtOnce) {
  PlacerOptions options;
  options.gp.targetDensity = -1.0;
  options.gp.maxIterations = -5;
  options.gp.lambdaUpdateEvery = 0;
  try {
    options.validate();
    FAIL() << "expected validate() to throw";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("targetDensity"), std::string::npos);
    EXPECT_NE(message.find("maxIterations"), std::string::npos);
    EXPECT_NE(message.find("lambdaUpdateEvery"), std::string::npos);
  }
}

TEST(PlacerOptionsValidateTest, PlaceDesignRejectsInvalidOptions) {
  auto db = flowDesign(139, 200);
  PlacerOptions options;
  options.gp.targetDensity = 2.0;
  EXPECT_THROW(placeDesign(*db, options), std::invalid_argument);
}

}  // namespace
}  // namespace dreamplace
