#include <gtest/gtest.h>

#include <cmath>

#include "ops/schedulers.h"

namespace dreamplace {
namespace {

TEST(DensityWeightTest, InitialWeightBalancesGradients) {
  EXPECT_DOUBLE_EQ(DensityWeightScheduler::initialWeight(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(DensityWeightScheduler::initialWeight(10.0, 0.0), 1.0);
}

TEST(DensityWeightTest, NegativeDeltaUsesMuMaxOriginal) {
  DensityWeightScheduler::Options options;
  options.tcadMuVariant = false;
  DensityWeightScheduler sched(options);
  // HPWL decreased => p < 0 => mu = mu_max (eq. (18a) first case).
  EXPECT_DOUBLE_EQ(sched.mu(-100.0, 0), 1.05);
  EXPECT_DOUBLE_EQ(sched.mu(-100.0, 10000), 1.05);
}

TEST(DensityWeightTest, TcadVariantDampsWithIterations) {
  DensityWeightScheduler::Options options;
  options.tcadMuVariant = true;
  DensityWeightScheduler sched(options);
  // Paper Sec. III-C: mu drops from 1.05 toward 1.05*0.98 = 1.029 as k
  // grows, settling at the floor after ~iteration 200.
  EXPECT_NEAR(sched.mu(-1.0, 0), 1.05, 1e-12);
  const double mu100 = sched.mu(-1.0, 100);
  EXPECT_LT(mu100, 1.05);
  EXPECT_GT(mu100, 1.029);
  EXPECT_NEAR(sched.mu(-1.0, 10000), 1.05 * 0.98, 1e-12);
  // Monotone non-increasing in k.
  double prev = 2.0;
  for (long k : {0L, 50L, 100L, 200L, 400L, 1000L}) {
    const double mu = sched.mu(-1.0, k);
    EXPECT_LE(mu, prev + 1e-15);
    prev = mu;
  }
}

TEST(DensityWeightTest, PositiveDeltaShrinksMu) {
  DensityWeightScheduler::Options options;
  options.refDeltaHpwl = 100.0;
  DensityWeightScheduler sched(options);
  // p = 0 => mu = mu_max; p = 1 => mu = 1; large p => floor at mu_min.
  EXPECT_NEAR(sched.mu(0.0, 0), 1.05, 1e-12);
  EXPECT_NEAR(sched.mu(100.0, 0), 1.0, 1e-12);
  EXPECT_NEAR(sched.mu(10000.0, 0), 0.95, 1e-12);
  // Monotone decreasing in deltaHpwl.
  double prev = 2.0;
  for (double d : {0.0, 20.0, 50.0, 100.0, 200.0, 1000.0}) {
    const double mu = sched.mu(d, 0);
    EXPECT_LE(mu, prev + 1e-15);
    prev = mu;
  }
}

TEST(DensityWeightTest, UpdateMultiplies) {
  DensityWeightScheduler::Options options;
  options.refDeltaHpwl = 100.0;
  DensityWeightScheduler sched(options);
  EXPECT_NEAR(sched.update(2.0, 0.0, 0), 2.0 * 1.05, 1e-12);
}

TEST(GammaSchedulerTest, MatchesEndpoints) {
  GammaScheduler sched(10.0);  // bin size 10
  // At overflow 0.1 the exponent is -1: gamma = 8 * 10 * 0.1 = 8.
  EXPECT_NEAR(sched.gamma(0.1), 8.0, 1e-9);
  // At overflow 1.0 the exponent is +1: gamma = 8 * 10 * 10 = 800.
  EXPECT_NEAR(sched.gamma(1.0), 800.0, 1e-9);
}

TEST(GammaSchedulerTest, MonotoneInOverflow) {
  GammaScheduler sched(5.0);
  double prev = 0;
  for (double ovf : {0.0, 0.05, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double g = sched.gamma(ovf);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(GammaSchedulerTest, ClampsOverflowOutOfRange) {
  GammaScheduler sched(1.0);
  EXPECT_DOUBLE_EQ(sched.gamma(-0.5), sched.gamma(0.0));
  EXPECT_DOUBLE_EQ(sched.gamma(2.0), sched.gamma(1.0));
}

}  // namespace
}  // namespace dreamplace
