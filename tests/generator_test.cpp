#include <gtest/gtest.h>

#include <map>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gen/suites.h"

namespace dreamplace {
namespace {

TEST(GeneratorTest, ProducesRequestedCounts) {
  GeneratorConfig cfg;
  cfg.numCells = 500;
  cfg.numNets = 520;
  cfg.numPads = 20;
  cfg.seed = 1;
  auto db = generateNetlist(cfg);
  EXPECT_EQ(db->numMovable(), 500);
  EXPECT_EQ(db->numNets(), 520);
  EXPECT_EQ(db->numFixed(), 20);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.numCells = 400;
  cfg.seed = 77;
  auto a = generateNetlist(cfg);
  auto b = generateNetlist(cfg);
  EXPECT_EQ(a->numPins(), b->numPins());
  EXPECT_DOUBLE_EQ(hpwl(*a), hpwl(*b));
  for (Index i = 0; i < a->numCells(); i += 37) {
    EXPECT_DOUBLE_EQ(a->cellX(i), b->cellX(i));
    EXPECT_DOUBLE_EQ(a->cellWidth(i), b->cellWidth(i));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.numCells = 400;
  cfg.seed = 1;
  auto a = generateNetlist(cfg);
  cfg.seed = 2;
  auto b = generateNetlist(cfg);
  EXPECT_NE(hpwl(*a), hpwl(*b));
}

TEST(GeneratorTest, UtilizationNearTarget) {
  for (double target : {0.5, 0.7, 0.9}) {
    GeneratorConfig cfg;
    cfg.numCells = 1000;
    cfg.utilization = target;
    cfg.seed = 3;
    auto db = generateNetlist(cfg);
    EXPECT_NEAR(db->utilization(), target, 0.05) << "target " << target;
  }
}

TEST(GeneratorTest, NetDegreeDistributionShape) {
  GeneratorConfig cfg;
  cfg.numCells = 2000;
  cfg.numNets = 2000;
  cfg.seed = 4;
  auto db = generateNetlist(cfg);
  std::map<Index, int> hist;
  Index max_degree = 0;
  for (Index e = 0; e < db->numNets(); ++e) {
    ++hist[db->netDegree(e)];
    max_degree = std::max(max_degree, db->netDegree(e));
  }
  // Contest-like: 2-pin nets dominate, some high-fanout tail exists.
  EXPECT_GT(hist[2], db->numNets() / 3);
  EXPECT_GT(max_degree, 10);
  EXPECT_LE(max_degree, 70);
}

TEST(GeneratorTest, PadsOnPeripheryAndFixed) {
  GeneratorConfig cfg;
  cfg.numCells = 300;
  cfg.numPads = 40;
  cfg.seed = 6;
  auto db = generateNetlist(cfg);
  const Box<Coord>& die = db->dieArea();
  for (Index i = db->numMovable(); i < db->numCells(); ++i) {
    if (db->cellName(i)[0] != 'p') {
      continue;
    }
    const Box<Coord> box = db->cellBox(i);
    const bool on_edge = box.xl <= die.xl + 1e-9 ||
                         box.xh >= die.xh - 1e-9 ||
                         box.yl <= die.yl + 1e-9 || box.yh >= die.yh - 1e-9;
    EXPECT_TRUE(on_edge) << db->cellName(i);
  }
}

TEST(GeneratorTest, MacrosInsideDieAndNonOverlapping) {
  GeneratorConfig cfg;
  cfg.numCells = 1000;
  cfg.numMacros = 6;
  cfg.macroAreaFraction = 0.2;
  cfg.seed = 8;
  auto db = generateNetlist(cfg);
  std::vector<Box<Coord>> macros;
  for (Index i = db->numMovable(); i < db->numCells(); ++i) {
    if (db->cellName(i)[0] == 'm') {
      macros.push_back(db->cellBox(i));
    }
  }
  EXPECT_GE(macros.size(), 4u);  // a couple may fail placement; most land
  for (size_t i = 0; i < macros.size(); ++i) {
    EXPECT_TRUE(db->dieArea().containsBox(macros[i]));
    for (size_t j = i + 1; j < macros.size(); ++j) {
      EXPECT_FALSE(macros[i].overlaps(macros[j]));
    }
  }
}

TEST(GeneratorTest, AllNetsHaveAtLeastTwoPins) {
  GeneratorConfig cfg;
  cfg.numCells = 500;
  cfg.seed = 10;
  auto db = generateNetlist(cfg);
  for (Index e = 0; e < db->numNets(); ++e) {
    EXPECT_GE(db->netDegree(e), 2);
  }
}

TEST(SuitesTest, AllSuitesScaleCounts) {
  const double scale = 0.005;
  for (const auto& suite :
       {ispd2005Suite(scale), industrialSuite(scale), dac2012Suite(scale)}) {
    ASSERT_FALSE(suite.empty());
    for (const auto& entry : suite) {
      EXPECT_GE(entry.config.numCells, 200);
      EXPECT_NEAR(entry.config.numCells,
                  std::max(200.0, entry.paperCellsK * 1000 * scale),
                  1.0)
          << entry.name;
    }
  }
}

TEST(SuitesTest, RelativeSizesPreserved) {
  const auto suite = ispd2005Suite(0.01);
  // bigblue4 is the largest ISPD 2005 design in the paper.
  const auto& bb4 = suite.back();
  EXPECT_EQ(bb4.name, "bigblue4");
  for (const auto& entry : suite) {
    EXPECT_LE(entry.config.numCells, bb4.config.numCells);
  }
}

TEST(SuitesTest, FindByName) {
  EXPECT_EQ(findSuiteEntry("adaptec1").name, "adaptec1");
  EXPECT_EQ(findSuiteEntry("design6").name, "design6");
  EXPECT_EQ(findSuiteEntry("SB19").name, "SB19");
  EXPECT_THROW(findSuiteEntry("nonexistent"), std::runtime_error);
}

TEST(SuitesTest, SuiteEntriesGenerate) {
  const auto entry = findSuiteEntry("adaptec1", 0.002);
  auto db = generateNetlist(entry.config);
  EXPECT_GT(db->numMovable(), 0);
  EXPECT_GT(db->numNets(), 0);
}

}  // namespace
}  // namespace dreamplace
