#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "lg/abacus_legalizer.h"
#include "lg/greedy_legalizer.h"
#include "lg/segments.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> randomizedDesign(std::uint64_t seed,
                                           Index cells = 500,
                                           Index macros = 0,
                                           double util = 0.7) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numMacros = macros;
  cfg.utilization = util;
  cfg.seed = seed;
  auto db = generateNetlist(cfg);
  // Scatter cells continuously (GP-like, overlapping, off-row) so the
  // legalizer has real work.
  Rng rng(seed * 31 + 1);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(
        i, rng.uniform(die.xl, die.xh - db->cellWidth(i)),
        rng.uniform(die.yl, die.yh - db->cellHeight(i)));
  }
  return db;
}

TEST(SegmentsTest, FullRowsWithoutObstacles) {
  auto db = randomizedDesign(1, 100);
  const auto segments = buildRowSegments(*db);
  // Pads sit on the periphery, so most rows should be one (nearly) full
  // segment; total segment length ~ total row length minus pad widths.
  double total = 0;
  for (const auto& seg : segments) {
    EXPECT_GE(seg.xh - seg.xl, db->siteWidth());
    total += seg.xh - seg.xl;
  }
  double row_total = 0;
  for (const auto& row : db->rows()) {
    row_total += row.xh - row.xl;
  }
  EXPECT_NEAR(total, row_total, db->totalFixedArea() / db->rowHeight() + 8);
}

TEST(SegmentsTest, MacrosSplitRows) {
  auto db = randomizedDesign(2, 600, /*macros=*/4);
  const auto segments = buildRowSegments(*db);
  // No segment may overlap a fixed cell.
  for (const auto& seg : segments) {
    for (Index i = db->numMovable(); i < db->numCells(); ++i) {
      const Box<Coord> box = db->cellBox(i);
      const bool y_overlap =
          box.yl < seg.y + db->rowHeight() && box.yh > seg.y;
      if (y_overlap) {
        EXPECT_LE(overlapLength(seg.xl, seg.xh, box.xl, box.xh), 1e-9)
            << "segment overlaps fixed cell " << db->cellName(i);
      }
    }
  }
}

class LegalizerKindTest : public ::testing::TestWithParam<int> {
 protected:
  LegalizerResult legalize(Database& db) const {
    if (GetParam() == 0) {
      return GreedyLegalizer().run(db);
    }
    return AbacusLegalizer().run(db);
  }
};

TEST_P(LegalizerKindTest, ProducesLegalPlacement) {
  auto db = randomizedDesign(3, 500);
  const auto result = legalize(*db);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.placed, db->numMovable());
  const auto report = checkLegality(*db);
  EXPECT_TRUE(report.legal) << report.summary();
}

TEST_P(LegalizerKindTest, LegalWithMacros) {
  auto db = randomizedDesign(4, 600, /*macros=*/5);
  const auto result = legalize(*db);
  EXPECT_EQ(result.failed, 0);
  const auto report = checkLegality(*db);
  EXPECT_TRUE(report.legal) << report.summary();
}

TEST_P(LegalizerKindTest, LegalAtHighUtilization) {
  auto db = randomizedDesign(5, 800, 0, /*util=*/0.9);
  const auto result = legalize(*db);
  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(checkLegality(*db).legal);
}

TEST_P(LegalizerKindTest, IdempotentOnLegalInput) {
  auto db = randomizedDesign(6, 400);
  legalize(*db);
  const double first = hpwl(*db);
  const auto second = legalize(*db);
  // Re-legalizing a legal placement must not move cells much.
  EXPECT_LT(second.totalDisplacement,
            0.05 * db->numMovable() * db->rowHeight());
  EXPECT_NEAR(hpwl(*db), first, 0.02 * first);
}

INSTANTIATE_TEST_SUITE_P(Kinds, LegalizerKindTest, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "Greedy" : "Abacus";
                         });

TEST(AbacusTest, LowerDisplacementThanGreedy) {
  auto db_greedy = randomizedDesign(7, 500);
  auto db_abacus = randomizedDesign(7, 500);
  const auto greedy = GreedyLegalizer().run(*db_greedy);
  const auto abacus = AbacusLegalizer().run(*db_abacus);
  // Abacus minimizes movement within rows; it should beat (or at least
  // match) Tetris packing on total displacement.
  EXPECT_LE(abacus.totalDisplacement, greedy.totalDisplacement * 1.05);
}

TEST(AbacusTest, PreservesHpwlBetter) {
  auto db_greedy = randomizedDesign(8, 500);
  auto db_abacus = randomizedDesign(8, 500);
  const double before = hpwl(*db_greedy);
  GreedyLegalizer().run(*db_greedy);
  AbacusLegalizer().run(*db_abacus);
  const double greedy_delta = std::abs(hpwl(*db_greedy) - before);
  const double abacus_delta = std::abs(hpwl(*db_abacus) - before);
  EXPECT_LE(abacus_delta, greedy_delta * 1.10);
}

TEST(LegalizerTest, SiteAlignmentExact) {
  auto db = randomizedDesign(9, 300);
  AbacusLegalizer().run(*db);
  const Coord site = db->siteWidth();
  const Coord base = db->rows().front().xl;
  for (Index i = 0; i < db->numMovable(); ++i) {
    const double offset = (db->cellX(i) - base) / site;
    EXPECT_NEAR(offset, std::round(offset), 1e-9) << db->cellName(i);
  }
}

}  // namespace
}  // namespace dreamplace
