// Memory accounting (common/memory.h): process peak-RSS sampling,
// MemoryTracker attribution, and the TrackedBytes RAII handle the
// workspace-owning classes report through.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/memory.h"
#include "fft/dct2d.h"

namespace dreamplace {
namespace {

MemoryTracker& tracker() { return MemoryTracker::instance(); }

TEST(ProcessMemoryTest, SampleIsValidOnLinux) {
  const ProcessMemory mem = sampleProcessMemory();
  ASSERT_TRUE(mem.valid);
  EXPECT_GT(mem.vmRssBytes, 0);
  EXPECT_GE(mem.vmHwmBytes, mem.vmRssBytes);
}

TEST(ProcessMemoryTest, PeakIsMonotonic) {
  const ProcessMemory before = sampleProcessMemory();
  ASSERT_TRUE(before.valid);
  {
    // Touch every page so the allocation is resident, not just reserved.
    std::vector<char> ballast(16u << 20, 1);
    const ProcessMemory during = sampleProcessMemory();
    EXPECT_GE(during.vmHwmBytes, before.vmHwmBytes);
  }
  const ProcessMemory after = sampleProcessMemory();
  // The high-water mark survives the release even if VmRSS drops.
  EXPECT_GE(after.vmHwmBytes, before.vmHwmBytes);
}

TEST(MemoryTrackerTest, AdjustTracksCurrentAndPeak) {
  tracker().adjust("test/mem/adjust", 100);
  tracker().adjust("test/mem/adjust", 50);
  EXPECT_EQ(tracker().current("test/mem/adjust"), 150);
  EXPECT_EQ(tracker().peak("test/mem/adjust"), 150);
  tracker().adjust("test/mem/adjust", -150);
  EXPECT_EQ(tracker().current("test/mem/adjust"), 0);
  EXPECT_EQ(tracker().peak("test/mem/adjust"), 150);
}

TEST(MemoryTrackerTest, CurrentClampsAtZero) {
  tracker().adjust("test/mem/clamp", -1000);
  EXPECT_EQ(tracker().current("test/mem/clamp"), 0);
  tracker().adjust("test/mem/clamp", 10);
  EXPECT_EQ(tracker().current("test/mem/clamp"), 10);
  tracker().adjust("test/mem/clamp", -10);
}

TEST(MemoryTrackerTest, PrefixSumsAcrossSubsystems) {
  tracker().adjust("test/mem/prefix/a", 30);
  tracker().adjust("test/mem/prefix/b", 70);
  EXPECT_EQ(tracker().currentPrefix("test/mem/prefix/"), 100);
  const auto snapshot = tracker().snapshot();
  EXPECT_EQ(snapshot.at("test/mem/prefix/a").currentBytes, 30);
  tracker().adjust("test/mem/prefix/a", -30);
  tracker().adjust("test/mem/prefix/b", -70);
}

TEST(TrackedBytesTest, ReleasesOnDestruction) {
  const std::int64_t before = tracker().current("test/mem/raii");
  {
    TrackedBytes handle("test/mem/raii");
    handle.set(1000);
    EXPECT_EQ(tracker().current("test/mem/raii"), before + 1000);
    handle.set(400);  // shrink adjusts by the delta
    EXPECT_EQ(tracker().current("test/mem/raii"), before + 400);
    handle.grow(100);
    EXPECT_EQ(tracker().current("test/mem/raii"), before + 500);
  }
  EXPECT_EQ(tracker().current("test/mem/raii"), before);
  EXPECT_GE(tracker().peak("test/mem/raii"), before + 1000);
}

TEST(TrackedBytesTest, MoveTransfersTheReservation) {
  const std::int64_t before = tracker().current("test/mem/move");
  TrackedBytes outer("test/mem/move");
  {
    TrackedBytes inner("test/mem/move");
    inner.set(500);
    outer = std::move(inner);
    EXPECT_EQ(outer.bytes(), 500);
    EXPECT_EQ(inner.bytes(), 0);
  }
  // The moved-from handle died without releasing the transferred bytes.
  EXPECT_EQ(tracker().current("test/mem/move"), before + 500);
  outer.set(0);
  EXPECT_EQ(tracker().current("test/mem/move"), before);
}

TEST(TrackedBytesTest, Dct2dPlanAttributesItsScratch) {
  const std::int64_t before = tracker().current("fft/scratch");
  {
    fft::Dct2dPlan<float> plan(64, 64, fft::Dct2dAlgorithm::kFft2dN);
    EXPECT_GT(tracker().current("fft/scratch"), before);
    // At least the two m*m transform buffers must be attributed.
    EXPECT_GE(tracker().current("fft/scratch") - before,
              static_cast<std::int64_t>(2 * 64 * 64 * sizeof(float)));
  }
  EXPECT_EQ(tracker().current("fft/scratch"), before);
}

}  // namespace
}  // namespace dreamplace
