#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fft/dct.h"

namespace dreamplace::fft {
namespace {

std::vector<double> randomVec(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.uniform(-3, 3);
  }
  return x;
}

double maxDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Parameterized over (size, fast algorithm): both fast DCT formulations
/// must agree with the naive O(N^2) definition.
class DctAlgoTest
    : public ::testing::TestWithParam<std::tuple<int, DctAlgorithm>> {};

TEST_P(DctAlgoTest, DctMatchesNaive) {
  const auto [n, algo] = GetParam();
  auto x = randomVec(n, 10 + n);
  EXPECT_LT(maxDiff(dct(x, DctAlgorithm::kNaive), dct(x, algo)), 1e-9 * n);
}

TEST_P(DctAlgoTest, IdctMatchesNaive) {
  const auto [n, algo] = GetParam();
  auto x = randomVec(n, 20 + n);
  EXPECT_LT(maxDiff(idct(x, DctAlgorithm::kNaive), idct(x, algo)), 1e-9 * n);
}

TEST_P(DctAlgoTest, RoundTripScalesByHalfN) {
  const auto [n, algo] = GetParam();
  auto x = randomVec(n, 30 + n);
  auto rt = idct(dct(x, algo), algo);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, std::abs(rt[i] - (n / 2.0) * x[i]));
  }
  EXPECT_LT(err, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, DctAlgoTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32, 64, 128),
                       ::testing::Values(DctAlgorithm::kFft2N,
                                         DctAlgorithm::kFftN)));

TEST(DctTest, KnownConstantInput) {
  // DCT-II of a constant c: X_0 = N*c, X_k = 0 for k > 0.
  const int n = 16;
  std::vector<double> x(n, 2.5);
  auto spectrum = dct(x, DctAlgorithm::kFftN);
  EXPECT_NEAR(spectrum[0], n * 2.5, 1e-10);
  for (int k = 1; k < n; ++k) {
    EXPECT_NEAR(spectrum[k], 0.0, 1e-10) << k;
  }
}

TEST(DctTest, SingleCosineModeIsolated) {
  // x_n = cos(pi*u*(n+1/2)/N) has DCT with only bin u populated (= N/2).
  const int n = 32;
  const int u = 5;
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) {
    x[i] = std::cos(M_PI * u * (i + 0.5) / n);
  }
  auto spectrum = dct(x, DctAlgorithm::kFftN);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(spectrum[k], k == u ? n / 2.0 : 0.0, 1e-9) << k;
  }
}

TEST(IdxstTest, MatchesDirectDefinition) {
  const int n = 24;
  auto c = randomVec(n, 55);
  std::vector<double> direct(n, 0.0);
  for (int k = 0; k < n; ++k) {
    double acc = 0;
    for (int m = 0; m < n; ++m) {
      acc += c[m] * std::sin(M_PI * m * (k + 0.5) / n);
    }
    direct[k] = acc;
  }
  for (auto algo : {DctAlgorithm::kNaive, DctAlgorithm::kFft2N,
                    DctAlgorithm::kFftN}) {
    EXPECT_LT(maxDiff(direct, idxst(c, algo)), 1e-9 * n);
  }
}

TEST(IdxstTest, IgnoresDcCoefficient) {
  // sin(0 * anything) = 0, so c_0 must not influence the result.
  const int n = 16;
  auto c = randomVec(n, 66);
  auto a = idxst(c, DctAlgorithm::kFftN);
  c[0] += 1234.5;
  auto b = idxst(c, DctAlgorithm::kFftN);
  EXPECT_LT(maxDiff(a, b), 1e-12);
}

TEST(DctFloatTest, SinglePrecisionAgreesWithDouble) {
  const int n = 64;
  Rng rng(77);
  std::vector<float> xf(n);
  std::vector<double> xd(n);
  for (int i = 0; i < n; ++i) {
    xd[i] = rng.uniform(-1, 1);
    xf[i] = static_cast<float>(xd[i]);
  }
  auto sf = dct(xf, DctAlgorithm::kFftN);
  auto sd = dct(xd, DctAlgorithm::kFftN);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(sf[i], sd[i], 1e-3);
  }
}

/// Even sizes that are not powers of two: the N-point route runs an
/// N/2-point complex FFT with N/2 non-power-of-two, so every transform
/// below goes through the cached Bluestein chirp-z plans.
class BluesteinDctTest : public ::testing::TestWithParam<int> {};

TEST_P(BluesteinDctTest, DoubleRoundTripAndNaiveAgreement) {
  const int n = GetParam();
  auto x = randomVec(n, 500 + n);
  for (auto algo : {DctAlgorithm::kFft2N, DctAlgorithm::kFftN}) {
    EXPECT_LT(maxDiff(dct(x, DctAlgorithm::kNaive), dct(x, algo)), 1e-9 * n);
    EXPECT_LT(maxDiff(idct(x, DctAlgorithm::kNaive), idct(x, algo)),
              1e-9 * n);
    EXPECT_LT(maxDiff(idxst(x, DctAlgorithm::kNaive), idxst(x, algo)),
              1e-9 * n);
    auto rt = idct(dct(x, algo), algo);
    double err = 0;
    for (int i = 0; i < n; ++i) {
      err = std::max(err, std::abs(rt[i] - (n / 2.0) * x[i]));
    }
    EXPECT_LT(err, 1e-8 * n);
  }
}

TEST_P(BluesteinDctTest, FloatRoundTripAndNaiveAgreement) {
  const int n = GetParam();
  Rng rng(900 + n);
  std::vector<float> x(n);
  for (float& v : x) {
    v = static_cast<float>(rng.uniform(-1, 1));
  }
  const auto maxDiffF = [](const std::vector<float>& a,
                           const std::vector<float>& b) {
    double m = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
    }
    return m;
  };
  for (auto algo : {DctAlgorithm::kFft2N, DctAlgorithm::kFftN}) {
    EXPECT_LT(maxDiffF(dct(x, DctAlgorithm::kNaive), dct(x, algo)), 2e-3);
    EXPECT_LT(maxDiffF(idct(x, DctAlgorithm::kNaive), idct(x, algo)), 2e-3);
    EXPECT_LT(maxDiffF(idxst(x, DctAlgorithm::kNaive), idxst(x, algo)),
              2e-3);
    auto rt = idct(dct(x, algo), algo);
    double err = 0;
    for (int i = 0; i < n; ++i) {
      err = std::max(err, std::abs(rt[i] - (n / 2.0) * x[i]));
    }
    EXPECT_LT(err, 2e-2 * n);
  }
}

// 12 -> h=6 (Bluestein), 20 -> h=10, 36 -> h=18, 100 -> h=50, 106 -> h=53
// (odd half, the worst case for the chirp padding).
INSTANTIATE_TEST_SUITE_P(EvenNonPow2, BluesteinDctTest,
                         ::testing::Values(12, 20, 36, 100, 106));

}  // namespace
}  // namespace dreamplace::fft
