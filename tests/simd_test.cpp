// Pins the contracts of the SIMD kernel layer (common/simd.h):
//  * vexp accuracy vs libm std::exp — <= 4 ULP wherever exp(x) is a
//    normal number, flush-to-zero below that (the documented contract;
//    measured bounds are tighter: <= 1 ULP float, <= 2 ULP double),
//  * lane-remainder determinism — an element's vexpArray value never
//    depends on its position relative to the vector-width boundary,
//  * scalar-fallback equivalence — a full WA evaluate through the
//    NativeVec kernels agrees with the ScalarVec/libm path to float
//    roundoff, on every kernel strategy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "gen/netlist_generator.h"
#include "ops/wirelength.h"

namespace dreamplace {
namespace {

// ULP distance between two same-sign finite floats (exp's range is
// positive, so the monotone bits-as-integer trick applies directly).
template <typename T>
std::int64_t ulpDistance(T a, T b) {
  using Bits = std::conditional_t<sizeof(T) == 4, std::int32_t, std::int64_t>;
  Bits ba, bb;
  std::memcpy(&ba, &a, sizeof(T));
  std::memcpy(&bb, &b, sizeof(T));
  return std::abs(static_cast<std::int64_t>(ba) -
                  static_cast<std::int64_t>(bb));
}

// Sweeps vexp over [lo, 0] through full native lanes and reports the
// worst ULP error vs std::exp, counting only points above the flush
// threshold (the contract returns exactly 0 below kVexpFlushBelow;
// the threshold is -inf for the libm ScalarVec fallback, so in scalar
// builds this checks exact agreement everywhere).
template <typename T>
std::int64_t worstUlp(T lo, int samples) {
  using V = simd::NativeVec<T>;
  constexpr int kW = V::kWidth;
  std::int64_t worst = 0;
  std::vector<T> in(static_cast<std::size_t>(samples) + kW, T(0));
  std::vector<T> out(in.size(), T(0));
  for (int i = 0; i < samples; ++i) {
    in[i] = lo + (T(0) - lo) * static_cast<T>(i) / static_cast<T>(samples - 1);
  }
  simd::vexpArray<V>(in.data(), out.data(), samples);
  for (int i = 0; i < samples; ++i) {
    if (in[i] < simd::kVexpFlushBelow<T>) {
      EXPECT_EQ(out[i], T(0)) << "x=" << in[i];
      continue;
    }
    const T ref = std::exp(in[i]);
    worst = std::max(worst, ulpDistance(out[i], ref));
  }
  return worst;
}

TEST(SimdVexpTest, FloatUlpBoundOnNegativeAxis) {
  EXPECT_LE(worstUlp<float>(-700.0f, 100000), 4);
}

TEST(SimdVexpTest, DoubleUlpBoundOnNegativeAxis) {
  EXPECT_LE(worstUlp<double>(-700.0, 100000), 4);
}

TEST(SimdVexpTest, ExactAtEdges) {
  using VF = simd::NativeVec<float>;
  using VD = simd::NativeVec<double>;
  float f_in[VF::kWidth] = {};      // exp(0) == 1 exactly
  float f_out[VF::kWidth];
  vexp(VF::load(f_in)).store(f_out);
  for (int l = 0; l < VF::kWidth; ++l) EXPECT_EQ(f_out[l], 1.0f);

  double d_in[VD::kWidth];
  double d_out[VD::kWidth];
  for (int l = 0; l < VD::kWidth; ++l) {
    d_in[l] = -std::numeric_limits<double>::infinity();
  }
  vexp(VD::load(d_in)).store(d_out);
  for (int l = 0; l < VD::kWidth; ++l) EXPECT_EQ(d_out[l], 0.0);
}

TEST(SimdVexpTest, LaneRemainderIsPositionIndependent) {
  // vexpArray over n elements where n is NOT a multiple of the lane
  // width: each element's value must equal the value it gets when it
  // sits in a full lane (the tail goes through the same vexp on a
  // zero-padded lane, never through a different scalar code path).
  using V = simd::NativeVec<double>;
  constexpr int kW = V::kWidth;
  Rng rng(99);
  for (int n : {1, kW - 1, kW + 1, 3 * kW - 1, 3 * kW + 2, 37}) {
    std::vector<double> in(static_cast<std::size_t>(n));
    for (double& v : in) v = -20.0 * rng.uniform();
    std::vector<double> tail_out(in.size(), 0.0);
    simd::vexpArray<V>(in.data(), tail_out.data(), n);
    for (int i = 0; i < n; ++i) {
      // Full-lane reference: element broadcast into every lane.
      double full[kW], out[kW];
      for (int l = 0; l < kW; ++l) full[l] = in[i];
      vexp(V::load(full)).store(out);
      ASSERT_EQ(tail_out[i], out[0]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdVexpTest, ScalarVecUsesLibm) {
  // The ScalarVec family is the honest pre-SIMD baseline: its vexp IS
  // std::exp per lane, bit for bit.
  using V = simd::ScalarVec<double, 1>;
  for (double x : {-700.0, -87.3, -5.0, -0.5, -1e-8, 0.0}) {
    double out;
    vexp(V::load(&x)).store(&out);
    EXPECT_EQ(out, std::exp(x)) << x;
  }
}

TEST(SimdWirelengthTest, ScalarAndSimdKernelsAgree) {
  // One full WA forward+backward, NativeVec vs ScalarVec, every kernel
  // strategy. With SIMD compiled out both paths are ScalarVec and the
  // comparison is exact; with it in, the only differences are the vexp
  // polynomial (<= 4 ULP) and lane-order reassociation, so double
  // agrees to ~1e-12 relative.
  GeneratorConfig cfg;
  cfg.numCells = 150;
  cfg.numPads = 8;
  cfg.seed = 31;
  auto db = generateNetlist(cfg);
  const Index n = db->numMovable();
  std::vector<double> params(2 * static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    params[i] = db->cellX(i) + db->cellWidth(i) / 2;
    params[i + n] = db->cellY(i) + db->cellHeight(i) / 2;
  }

  for (WirelengthKernel kernel :
       {WirelengthKernel::kMerged, WirelengthKernel::kNetByNet,
        WirelengthKernel::kAtomic}) {
    WaWirelengthOp<double>::Options simd_opts;
    simd_opts.kernel = kernel;
    simd_opts.simd = true;
    WaWirelengthOp<double> simd_op(*db, n, simd_opts);
    simd_op.setGamma(4.0);

    WaWirelengthOp<double>::Options scalar_opts = simd_opts;
    scalar_opts.simd = false;
    WaWirelengthOp<double> scalar_op(*db, n, scalar_opts);
    scalar_op.setGamma(4.0);

    std::vector<double> g1(params.size()), g2(params.size());
    const double v1 = simd_op.evaluate(params, g1);
    const double v2 = scalar_op.evaluate(params, g2);
    EXPECT_NEAR(v1, v2, 1e-10 * std::abs(v2));
    for (std::size_t i = 0; i < g1.size(); ++i) {
      ASSERT_NEAR(g1[i], g2[i], 1e-10 * (1.0 + std::abs(g2[i]))) << i;
    }
  }
}

TEST(SimdWirelengthTest, ScalarAndSimdLseAgree) {
  GeneratorConfig cfg;
  cfg.numCells = 120;
  cfg.numPads = 6;
  cfg.seed = 47;
  auto db = generateNetlist(cfg);
  const Index n = db->numMovable();
  std::vector<double> params(2 * static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    params[i] = db->cellX(i) + db->cellWidth(i) / 2;
    params[i + n] = db->cellY(i) + db->cellHeight(i) / 2;
  }

  LseWirelengthOp<double> simd_op(*db, n, 0, /*simd=*/true);
  LseWirelengthOp<double> scalar_op(*db, n, 0, /*simd=*/false);
  simd_op.setGamma(4.0);
  scalar_op.setGamma(4.0);
  std::vector<double> g1(params.size()), g2(params.size());
  const double v1 = simd_op.evaluate(params, g1);
  const double v2 = scalar_op.evaluate(params, g2);
  EXPECT_NEAR(v1, v2, 1e-10 * std::abs(v2));
  for (std::size_t i = 0; i < g1.size(); ++i) {
    ASSERT_NEAR(g1[i], g2[i], 1e-10 * (1.0 + std::abs(g2[i]))) << i;
  }
}

TEST(SimdLayerTest, BuildConstantsAreCoherent) {
  EXPECT_GE(simd::kNativeWidth<float>, 1);
  EXPECT_GE(simd::kNativeWidth<double>, 1);
  EXPECT_GE(simd::kNativeWidth<float>, simd::kNativeWidth<double>);
  EXPECT_NE(simd::activeIsaName(), nullptr);
  if constexpr (!simd::kEnabled) {
    EXPECT_EQ(simd::kNativeWidth<float>, 1);
    EXPECT_EQ(simd::kNativeWidth<double>, 1);
    EXPECT_STREQ(simd::activeIsaName(), "scalar");
  }
}

}  // namespace
}  // namespace dreamplace
