#include <gtest/gtest.h>

#include <cmath>

#include "common/counters.h"
#include "common/rng.h"
#include "ops/electrostatics.h"

namespace dreamplace {
namespace {

/// Parameterized over (grid size, mode u, mode v): a single cosine mode
/// rho(x,y) = cos(wu*(x+1/2)) cos(wv*(y+1/2)) is an eigenfunction of the
/// Laplacian with Neumann BCs, so the solver must return exactly
/// psi = rho/(wu^2+wv^2) and the corresponding analytic fields.
class PoissonModeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PoissonModeTest, SingleModeSolvedExactly) {
  const auto [m, u, v] = GetParam();
  const double wu = M_PI * u / m;
  const double wv = M_PI * v / m;
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (int x = 0; x < m; ++x) {
    for (int y = 0; y < m; ++y) {
      rho[x * m + y] =
          std::cos(wu * (x + 0.5)) * std::cos(wv * (y + 0.5));
    }
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);

  const double w2 = wu * wu + wv * wv;
  for (int x = 0; x < m; ++x) {
    for (int y = 0; y < m; ++y) {
      const size_t i = static_cast<size_t>(x) * m + y;
      const double psi = rho[i] / w2;
      ASSERT_NEAR(sol.potential[i], psi, 1e-9) << x << "," << y;
      const double ex = wu / w2 * std::sin(wu * (x + 0.5)) *
                        std::cos(wv * (y + 0.5));
      const double ey = wv / w2 * std::cos(wu * (x + 0.5)) *
                        std::sin(wv * (y + 0.5));
      ASSERT_NEAR(sol.fieldX[i], ex, 1e-9);
      ASSERT_NEAR(sol.fieldY[i], ey, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PoissonModeTest,
                         ::testing::Values(std::make_tuple(16, 1, 0),
                                           std::make_tuple(16, 0, 1),
                                           std::make_tuple(16, 3, 2),
                                           std::make_tuple(32, 5, 7),
                                           std::make_tuple(64, 1, 1)));

TEST(PoissonTest, UniformDensityGivesZeroField) {
  const int m = 32;
  std::vector<double> rho(static_cast<size_t>(m) * m, 0.7);
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);
  for (size_t i = 0; i < rho.size(); ++i) {
    ASSERT_NEAR(sol.potential[i], 0.0, 1e-9);
    ASSERT_NEAR(sol.fieldX[i], 0.0, 1e-9);
    ASSERT_NEAR(sol.fieldY[i], 0.0, 1e-9);
  }
  EXPECT_NEAR(sol.energy, 0.0, 1e-9);
}

TEST(PoissonTest, DcOffsetIsIrrelevant) {
  // Adding a constant to rho must not change the solution (eq. (4c)).
  const int m = 16;
  Rng rng(8);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (double& r : rho) {
    r = rng.uniform(0, 1);
  }
  std::vector<double> shifted = rho;
  for (double& r : shifted) {
    r += 5.0;
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> a, b;
  solver.solve(rho, a);
  solver.solve(shifted, b);
  for (size_t i = 0; i < rho.size(); ++i) {
    ASSERT_NEAR(a.potential[i], b.potential[i], 1e-8);
    ASSERT_NEAR(a.fieldX[i], b.fieldX[i], 1e-8);
  }
}

TEST(PoissonTest, EnergyNonNegativeForZeroMeanCharge) {
  // Energy = 1/2 rho^T K^{-1} rho is PSD on the zero-mean subspace; with
  // the DC mode removed it is non-negative for any rho.
  const int m = 32;
  Rng rng(19);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (double& r : rho) {
    r = rng.uniform(-1, 1);
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);
  EXPECT_GE(sol.energy, -1e-9);
}

TEST(PoissonTest, PotentialHasZeroMean) {
  const int m = 16;
  Rng rng(23);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (double& r : rho) {
    r = rng.uniform(0, 2);
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);
  double mean = 0;
  for (double p : sol.potential) {
    mean += p;
  }
  EXPECT_NEAR(mean / sol.potential.size(), 0.0, 1e-9);
}

TEST(PoissonTest, FieldIsDiscreteGradientOfPotential) {
  // For smooth rho, central differences of psi should approximate -field.
  const int m = 64;
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (int x = 0; x < m; ++x) {
    for (int y = 0; y < m; ++y) {
      const double dx = (x - m / 2.0) / (m / 6.0);
      const double dy = (y - m / 2.0) / (m / 6.0);
      rho[x * m + y] = std::exp(-(dx * dx + dy * dy));
    }
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);
  double max_err = 0;
  double max_field = 0;
  for (int x = 2; x < m - 2; ++x) {
    for (int y = 2; y < m - 2; ++y) {
      const double dpsi_dx = (sol.potential[(x + 1) * m + y] -
                              sol.potential[(x - 1) * m + y]) /
                             2.0;
      const double err = std::abs(-dpsi_dx - sol.fieldX[x * m + y]);
      max_err = std::max(max_err, err);
      max_field = std::max(max_field, std::abs(sol.fieldX[x * m + y]));
    }
  }
  EXPECT_LT(max_err, 0.05 * max_field);
}

TEST(PoissonTest, AllDctAlgorithmsAgree) {
  const int m = 32;
  Rng rng(31);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (double& r : rho) {
    r = rng.uniform(0, 1);
  }
  PoissonSolution<double> ref, other;
  PoissonSolver<double>(m, m, fft::Dct2dAlgorithm::kFft2dN).solve(rho, ref);
  for (auto algo : {fft::Dct2dAlgorithm::kRowCol2N,
                    fft::Dct2dAlgorithm::kRowColN}) {
    PoissonSolver<double>(m, m, algo).solve(rho, other);
    for (size_t i = 0; i < rho.size(); ++i) {
      ASSERT_NEAR(other.potential[i], ref.potential[i], 1e-8);
      ASSERT_NEAR(other.fieldX[i], ref.fieldX[i], 1e-8);
      ASSERT_NEAR(other.fieldY[i], ref.fieldY[i], 1e-8);
    }
  }
}

TEST(PoissonTest, SolveIsAllocationFreeAfterFirstCall) {
  // The solver owns its transform plans and spectral workspace, and the
  // caller-owned PoissonSolution buffers reach full size on the first
  // call, so every later call must touch the heap zero times. Proven via
  // the counter registry: no workspace growth, no new FFT plans, no plan
  // scratch growth across the steady-state calls.
  const int m = 32;
  Rng rng(41);
  std::vector<double> rho(static_cast<size_t>(m) * m);
  for (double& r : rho) {
    r = rng.uniform(0, 1);
  }
  PoissonSolver<double> solver(m, m);
  PoissonSolution<double> sol;
  solver.solve(rho, sol);  // warm-up: grows `sol` to full size

  auto& reg = CounterRegistry::instance();
  const auto ws_alloc = reg.value("ops/electrostatics/ws_alloc");
  const auto ws_reuse = reg.value("ops/electrostatics/ws_reuse");
  const auto plan_create = reg.value("fft/plan/create");
  const auto plan2d_create = reg.value("fft/plan2d/create");
  const auto scratch_grow = reg.value("fft/scratch_grow");
  constexpr int kSteadyCalls = 5;
  for (int i = 0; i < kSteadyCalls; ++i) {
    solver.solve(rho, sol);
  }
  EXPECT_EQ(reg.value("ops/electrostatics/ws_alloc"), ws_alloc);
  EXPECT_EQ(reg.value("ops/electrostatics/ws_reuse"),
            ws_reuse + kSteadyCalls);
  EXPECT_EQ(reg.value("fft/plan/create"), plan_create);
  EXPECT_EQ(reg.value("fft/plan2d/create"), plan2d_create);
  EXPECT_EQ(reg.value("fft/scratch_grow"), scratch_grow);
}

TEST(PoissonFloatTest, SinglePrecisionTracksDouble) {
  const int m = 32;
  Rng rng(37);
  std::vector<float> rho32(static_cast<size_t>(m) * m);
  std::vector<double> rho64(rho32.size());
  for (size_t i = 0; i < rho32.size(); ++i) {
    rho64[i] = rng.uniform(0, 1);
    rho32[i] = static_cast<float>(rho64[i]);
  }
  PoissonSolver<float> s32(m, m);
  PoissonSolver<double> s64(m, m);
  PoissonSolution<float> a;
  PoissonSolution<double> b;
  s32.solve(rho32, a);
  s64.solve(rho64, b);
  double err = 0;
  for (size_t i = 0; i < rho32.size(); ++i) {
    err = std::max(err, std::abs(a.potential[i] - b.potential[i]));
  }
  EXPECT_LT(err, 1e-2);
}

}  // namespace
}  // namespace dreamplace
