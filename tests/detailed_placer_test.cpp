#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/metrics.h"
#include "dp/detailed_placer.h"
#include "gen/netlist_generator.h"
#include "lg/abacus_legalizer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> legalizedDesign(std::uint64_t seed,
                                          Index cells = 500,
                                          Index macros = 0) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numMacros = macros;
  cfg.seed = seed;
  auto db = generateNetlist(cfg);
  Rng rng(seed + 100);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(
        i, rng.uniform(die.xl, die.xh - db->cellWidth(i)),
        rng.uniform(die.yl, die.yh - db->cellHeight(i)));
  }
  AbacusLegalizer().run(*db);
  EXPECT_TRUE(checkLegality(*db).legal);
  return db;
}

TEST(DetailedPlacerTest, NeverIncreasesHpwl) {
  auto db = legalizedDesign(11);
  const double before = hpwl(*db);
  const auto result = DetailedPlacer().run(*db);
  EXPECT_LE(result.finalHpwl, before + 1e-6);
  EXPECT_DOUBLE_EQ(result.initialHpwl, before);
  EXPECT_NEAR(result.finalHpwl, hpwl(*db), 1e-9);
}

TEST(DetailedPlacerTest, ImprovesRandomLegalPlacement) {
  // A randomly legalized placement has plenty of slack; DP must find some.
  auto db = legalizedDesign(13);
  const auto result = DetailedPlacer().run(*db);
  EXPECT_LT(result.finalHpwl, result.initialHpwl * 0.995);
  EXPECT_GT(result.reorderMoves + result.swapMoves, 0);
}

TEST(DetailedPlacerTest, PreservesLegality) {
  auto db = legalizedDesign(17);
  DetailedPlacer().run(*db);
  const auto report = checkLegality(*db);
  EXPECT_TRUE(report.legal) << report.summary();
}

TEST(DetailedPlacerTest, PreservesLegalityWithMacros) {
  auto db = legalizedDesign(19, 600, /*macros=*/5);
  DetailedPlacer().run(*db);
  const auto report = checkLegality(*db);
  EXPECT_TRUE(report.legal) << report.summary();
}

TEST(DetailedPlacerTest, MorePassesNeverHurt) {
  auto db1 = legalizedDesign(23);
  auto db2 = legalizedDesign(23);
  DetailedPlacer::Options one;
  one.passes = 1;
  DetailedPlacer::Options three;
  three.passes = 3;
  const auto r1 = DetailedPlacer(one).run(*db1);
  const auto r3 = DetailedPlacer(three).run(*db2);
  EXPECT_LE(r3.finalHpwl, r1.finalHpwl + 1e-6);
}

TEST(DetailedPlacerTest, WindowSizeFourWorks) {
  auto db = legalizedDesign(29, 300);
  DetailedPlacer::Options options;
  options.windowSize = 4;
  const auto result = DetailedPlacer(options).run(*db);
  EXPECT_LE(result.finalHpwl, result.initialHpwl + 1e-6);
  EXPECT_TRUE(checkLegality(*db).legal);
}

TEST(DetailedPlacerTest, IdempotentOnConvergedPlacement) {
  auto db = legalizedDesign(31, 300);
  DetailedPlacer::Options options;
  options.passes = 30;
  options.convergenceTolerance = 1e-4;  // run to a fixed point
  DetailedPlacer(options).run(*db);
  const double converged = hpwl(*db);
  const auto again = DetailedPlacer(options).run(*db);
  // A second full run should find (almost) nothing at the fixed point.
  EXPECT_NEAR(again.finalHpwl, converged, 0.003 * converged);
}

}  // namespace
}  // namespace dreamplace
