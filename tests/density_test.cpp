#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "gen/netlist_generator.h"
#include "ops/density_map.h"
#include "ops/density_op.h"

namespace dreamplace {
namespace {

DensityGrid<double> unitGrid(int m, double binSize = 1.0) {
  DensityGrid<double> grid;
  grid.mx = m;
  grid.my = m;
  grid.xl = 0;
  grid.yl = 0;
  grid.binW = binSize;
  grid.binH = binSize;
  return grid;
}

double mapSum(const std::vector<double>& map) {
  return std::accumulate(map.begin(), map.end(), 0.0);
}

TEST(MakeGridTest, PowerOfTwoAndClamped) {
  Box<Coord> region{0, 0, 1000, 1000};
  const auto grid = makeGrid<double>(region, 2000, 16, 1024);
  EXPECT_EQ(grid.mx, grid.my);
  EXPECT_EQ(grid.mx & (grid.mx - 1), 0);  // power of two
  EXPECT_GE(grid.mx, 16);
  EXPECT_LE(grid.mx, 1024);
  EXPECT_DOUBLE_EQ(grid.binW * grid.mx, 1000);
  // Tiny design clamps to the minimum.
  EXPECT_EQ(makeGrid<double>(region, 4, 16, 1024).mx, 16);
}

TEST(DensityMapTest, ScatterConservesCharge) {
  // Total map mass (in density units * bin area) equals total cell area,
  // regardless of smoothing, as long as cells stay inside the region.
  const auto grid = unitGrid(32);
  std::vector<double> w{3.0, 0.5, 10.0};
  std::vector<double> h{2.0, 0.5, 4.0};
  DensityMapBuilder<double> builder(grid, w, h);
  std::vector<double> map(32 * 32, 0.0);
  const double x[] = {10.0, 20.0, 16.0};
  const double y[] = {10.0, 20.0, 16.0};
  builder.scatter(x, y, 0, 3, map);
  const double expected = 3 * 2 + 0.5 * 0.5 + 10 * 4;
  EXPECT_NEAR(mapSum(map) * grid.binArea(), expected, 1e-9);
}

TEST(DensityMapTest, SmoothingExpandsSmallCells) {
  const auto grid = unitGrid(16, 2.0);  // bins 2x2
  std::vector<double> w{0.5};
  std::vector<double> h{0.5};
  DensityMapBuilder<double> builder(grid, w, h);
  // Effective footprint >= sqrt(2)*bin in each dimension.
  EXPECT_GE(builder.effectiveWidth(0), M_SQRT2 * 2.0 - 1e-12);
  EXPECT_GE(builder.effectiveHeight(0), M_SQRT2 * 2.0 - 1e-12);
  // Charge scale preserves area.
  EXPECT_NEAR(builder.chargeScale(0) * builder.effectiveWidth(0) *
                  builder.effectiveHeight(0),
              0.25, 1e-12);
  // Large cells are untouched.
  std::vector<double> w2{10.0};
  std::vector<double> h2{10.0};
  DensityMapBuilder<double> big(grid, w2, h2);
  EXPECT_DOUBLE_EQ(big.effectiveWidth(0), 10.0);
  EXPECT_DOUBLE_EQ(big.chargeScale(0), 1.0);
}

class DensityKernelTest
    : public ::testing::TestWithParam<std::tuple<DensityKernel, int>> {};

TEST_P(DensityKernelTest, StrategiesProduceIdenticalMaps) {
  const auto [kernel, subdivision] = GetParam();
  const auto grid = unitGrid(32);
  Rng rng(7);
  const int n = 40;
  std::vector<double> w(n), h(n), x(n), y(n);
  for (int i = 0; i < n; ++i) {
    w[i] = rng.uniform(0.5, 6.0);
    h[i] = rng.uniform(0.5, 6.0);
    x[i] = rng.uniform(4, 28);
    y[i] = rng.uniform(4, 28);
  }
  DensityMapBuilder<double>::Options base_opts;
  base_opts.kernel = DensityKernel::kNaive;
  base_opts.subdivision = 1;
  DensityMapBuilder<double> reference(grid, w, h, base_opts);
  DensityMapBuilder<double>::Options opts;
  opts.kernel = kernel;
  opts.subdivision = subdivision;
  DensityMapBuilder<double> variant(grid, w, h, opts);

  std::vector<double> map_ref(32 * 32, 0.0), map_var(32 * 32, 0.0);
  reference.scatter(x.data(), y.data(), 0, n, map_ref);
  variant.scatter(x.data(), y.data(), 0, n, map_var);
  for (size_t b = 0; b < map_ref.size(); ++b) {
    ASSERT_NEAR(map_var[b], map_ref[b], 1e-9) << "bin " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSubdivisions, DensityKernelTest,
    ::testing::Combine(::testing::Values(DensityKernel::kNaive,
                                         DensityKernel::kSorted),
                       ::testing::Values(1, 2, 4, 8)));

TEST(DensityMapTest, ScatterRangeRestriction) {
  const auto grid = unitGrid(16);
  std::vector<double> w{2, 2, 2};
  std::vector<double> h{2, 2, 2};
  DensityMapBuilder<double> builder(grid, w, h);
  const double x[] = {4.0, 8.0, 12.0};
  const double y[] = {4.0, 8.0, 12.0};
  std::vector<double> first(16 * 16, 0.0), rest(16 * 16, 0.0),
      all(16 * 16, 0.0);
  builder.scatter(x, y, 0, 1, first);
  builder.scatter(x, y, 1, 3, rest);
  builder.scatter(x, y, 0, 3, all);
  for (size_t b = 0; b < all.size(); ++b) {
    ASSERT_NEAR(first[b] + rest[b], all[b], 1e-12);
  }
}

TEST(DensityOverflowTest, ZeroWhenSpreadHighWhenClumped) {
  const auto grid = unitGrid(16);
  const int n = 16;
  std::vector<double> w(n, 1.0), h(n, 1.0);
  DensityMapBuilder<double> builder(grid, w, h);
  std::vector<double> fixed(16 * 16, 0.0);

  // Spread: one cell per distinct bin.
  std::vector<double> xs(n), ys(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = (i % 4) * 4 + 2.0;
    ys[i] = (i / 4) * 4 + 2.0;
  }
  std::vector<double> map(16 * 16, 0.0);
  builder.scatter(xs.data(), ys.data(), 0, n, map);
  EXPECT_LT(densityOverflow<double>(map, fixed, grid, 1.0, n * 1.0), 0.15);

  // Clumped: all cells on one spot.
  std::fill(xs.begin(), xs.end(), 8.0);
  std::fill(ys.begin(), ys.end(), 8.0);
  std::fill(map.begin(), map.end(), 0.0);
  builder.scatter(xs.data(), ys.data(), 0, n, map);
  EXPECT_GT(densityOverflow<double>(map, fixed, grid, 1.0, n * 1.0), 0.5);
}

TEST(FixedDensityMapTest, CoversFixedCellsAndClamps) {
  Database db;
  db.addCell("m", 2, 2, true);
  const Index f1 = db.addCell("f1", 4, 4, false);
  const Index f2 = db.addCell("f2", 4, 4, false);
  const Index net = db.addNet("n");
  db.addPin(net, 0, 0, 0);
  db.addPin(net, f1, 0, 0);
  db.setDieArea({0, 0, 16, 16});
  db.addRow({0, 2, 0, 16, 1});
  db.setCellPosition(f1, 4, 4);
  db.setCellPosition(f2, 4, 4);  // stacked on purpose
  db.finalize();

  const auto grid = unitGrid(16);
  const auto map = buildFixedDensityMap<double>(db, grid);
  // Bins inside the macro area fully covered; clamped at 1 despite stack.
  EXPECT_DOUBLE_EQ(map[5 * 16 + 5], 1.0);
  EXPECT_DOUBLE_EQ(map[0], 0.0);
}

TEST(GatherForceTest, PushesApartTwoClumps) {
  // Two heavy nodes at the same location: the field must push them in
  // opposite directions (gradient signs differ) or at minimum produce a
  // repulsive configuration once separated slightly.
  GeneratorConfig cfg;
  cfg.numCells = 64;
  cfg.seed = 12;
  auto db = generateNetlist(cfg);
  const auto grid = makeGrid<double>(db->dieArea(), db->numMovable(), 16, 64);
  std::vector<double> nodeW, nodeH;
  DensityOp<double>::makeNodeSizes(*db, {}, {}, nodeW, nodeH);
  DensityOp<double> op(*db, grid, nodeW, nodeH);

  const Index n = op.numNodes();
  std::vector<double> params(2 * static_cast<size_t>(n));
  const double cx = db->dieArea().centerX();
  const double cy = db->dieArea().centerY();
  // Left half slightly left of center, right half slightly right.
  for (Index i = 0; i < n; ++i) {
    params[i] = cx + (i % 2 == 0 ? -2.0 : 2.0);
    params[i + n] = cy;
  }
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);
  // Density gradient points toward increasing energy; descending it moves
  // left cells further left (negative direction => gradient positive).
  double left_grad = 0, right_grad = 0;
  for (Index i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      left_grad += grad[i];
    } else {
      right_grad += grad[i];
    }
  }
  EXPECT_GT(left_grad, 0.0);   // -grad pushes left cells left
  EXPECT_LT(right_grad, 0.0);  // -grad pushes right cells right
}

TEST(DensityOpTest, EnergyDecreasesAsCellsSpread) {
  GeneratorConfig cfg;
  cfg.numCells = 100;
  cfg.seed = 14;
  auto db = generateNetlist(cfg);
  const auto grid = makeGrid<double>(db->dieArea(), db->numMovable(), 16, 64);
  std::vector<double> nodeW, nodeH;
  DensityOp<double>::makeNodeSizes(*db, {}, {}, nodeW, nodeH);
  DensityOp<double> op(*db, grid, nodeW, nodeH);
  const Index n = op.numNodes();
  const auto& die = db->dieArea();

  // Clumped at center.
  std::vector<double> clumped(2 * static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    clumped[i] = die.centerX();
    clumped[i + n] = die.centerY();
  }
  // Spread on a grid.
  std::vector<double> spread(2 * static_cast<size_t>(n));
  const int side = static_cast<int>(std::ceil(std::sqrt(double(n))));
  for (Index i = 0; i < n; ++i) {
    spread[i] = die.xl + (0.5 + i % side) * die.width() / side;
    spread[i + n] = die.yl + (0.5 + i / side) * die.height() / side;
  }
  std::vector<double> grad(2 * static_cast<size_t>(n));
  const double e_clumped = op.evaluate(clumped, grad);
  const double e_spread = op.evaluate(spread, grad);
  EXPECT_LT(e_spread, e_clumped);
  EXPECT_LT(op.overflow(spread), op.overflow(clumped));
}

TEST(DensityGradientTest, ApproximatesEnergyDerivativeForSmoothCell) {
  // The electric-force gradient is the continuum approximation of the
  // energy derivative; for a cell spanning many bins the two should agree
  // to within a modest tolerance (docs/ALGORITHMS.md §3).
  Database db;
  const Index big = db.addCell("big", 40, 40, true);
  const Index anchor = db.addCell("a", 2, 2, true);
  const Index net = db.addNet("n");
  db.addPin(net, big, 0, 0);
  db.addPin(net, anchor, 0, 0);
  db.setDieArea({0, 0, 128, 128});
  db.addRow({0, 2, 0, 128, 1});
  db.finalize();

  DensityGrid<double> grid;
  grid.mx = 64;
  grid.my = 64;
  grid.xl = 0;
  grid.yl = 0;
  grid.binW = 2;
  grid.binH = 2;
  std::vector<double> nodeW, nodeH;
  DensityOp<double>::makeNodeSizes(db, {}, {}, nodeW, nodeH);
  DensityOp<double> op(db, grid, nodeW, nodeH);
  const Index n = op.numNodes();
  // Place the big cell off-center so the field at it is nonzero.
  std::vector<double> params{40.0, 90.0, 40.0, 90.0};
  ASSERT_EQ(params.size(), 2 * static_cast<size_t>(n));
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);

  const double h = 0.5;
  std::vector<double> scratch(params.size());
  for (int coord : {0, 2}) {  // big cell x and y
    auto plus = params;
    auto minus = params;
    plus[coord] += h;
    minus[coord] -= h;
    const double fp = op.evaluate(plus, scratch);
    const double fm = op.evaluate(minus, scratch);
    const double numeric = (fp - fm) / (2 * h);
    ASSERT_NE(numeric, 0.0);
    // Same sign and within 35% magnitude.
    EXPECT_GT(grad[coord] * numeric, 0.0) << "coord " << coord;
    EXPECT_NEAR(grad[coord], numeric, 0.35 * std::abs(numeric))
        << "coord " << coord;
  }
}

TEST(ComputeFillersTest, FillsWhitespaceToTarget) {
  GeneratorConfig cfg;
  cfg.numCells = 500;
  cfg.utilization = 0.6;
  cfg.seed = 15;
  auto db = generateNetlist(cfg);
  std::vector<double> w, h;
  computeFillers<double>(*db, 1.0, w, h);
  ASSERT_FALSE(w.empty());
  double filler_area = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    filler_area += w[i] * h[i];
  }
  const double whitespace = db->dieArea().area() - db->totalFixedArea();
  const double expected = 1.0 * whitespace - db->totalMovableArea();
  EXPECT_NEAR(filler_area, expected, 0.01 * expected);
  // A lower target can require no fillers at all.
  computeFillers<double>(*db, 0.3, w, h);
  EXPECT_TRUE(w.empty());
}

}  // namespace
}  // namespace dreamplace
