#include <gtest/gtest.h>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "place/net_weighting.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> design(std::uint64_t seed = 91) {
  GeneratorConfig cfg;
  cfg.numCells = 600;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

NetWeightingOptions fastOptions() {
  NetWeightingOptions options;
  options.gp.maxIterations = 350;
  options.gp.binsMax = 64;
  options.rounds = 2;
  return options;
}

TEST(TailNetHpwlTest, UnaffectedByWeights) {
  auto db = design();
  const double before = tailNetHpwl(*db);
  for (Index e = 0; e < db->numNets(); e += 3) {
    db->setNetWeight(e, 5.0);
  }
  EXPECT_NEAR(tailNetHpwl(*db), before, 1e-9 * before);
}

TEST(NetWeightingTest, ReducesTailNetLength) {
  auto db = design(93);
  const auto result = netWeightingPlace<double>(*db, fastOptions());
  ASSERT_EQ(static_cast<int>(result.tailTrace.size()), result.rounds);
  // The timing proxy (mean length of the longest 5% of nets) must improve
  // from the unweighted first round to the final weighted round.
  EXPECT_LT(result.tailTrace.back(), result.tailTrace.front());
}

TEST(NetWeightingTest, HpwlCostIsBounded) {
  // Net weighting trades total HPWL for shorter critical nets; the total
  // (unweighted) HPWL should not degrade unboundedly.
  auto db_plain = design(97);
  auto db_weighted = design(97);
  NetWeightingOptions options = fastOptions();

  NetWeightingOptions no_rounds = options;
  no_rounds.rounds = 0;  // plain GP through the same code path
  const auto plain = netWeightingPlace<double>(*db_plain, no_rounds);
  const auto weighted = netWeightingPlace<double>(*db_weighted, options);
  EXPECT_LT(weighted.hpwl, 1.25 * plain.hpwl);
  EXPECT_LT(weighted.tailNetHpwl, plain.tailNetHpwl);
}

TEST(NetWeightingTest, WeightsAreCapped) {
  auto db = design(101);
  NetWeightingOptions options = fastOptions();
  options.rounds = 6;
  options.boost = 4.0;
  options.maxWeight = 8.0;
  netWeightingPlace<double>(*db, options);
  for (Index e = 0; e < db->numNets(); ++e) {
    EXPECT_LE(db->netWeight(e), options.maxWeight + 1e-9);
  }
}

TEST(NetWeightingTest, ZeroRoundsMatchesPlainGp) {
  auto db = design(103);
  NetWeightingOptions options = fastOptions();
  options.rounds = 0;
  const auto result = netWeightingPlace<double>(*db, options);
  EXPECT_EQ(result.rounds, 1);
  for (Index e = 0; e < db->numNets(); ++e) {
    EXPECT_DOUBLE_EQ(db->netWeight(e), 1.0);  // untouched
  }
}

}  // namespace
}  // namespace dreamplace
