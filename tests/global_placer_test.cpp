#include <gtest/gtest.h>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gp/global_placer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> smallDesign(std::uint64_t seed = 41,
                                      Index cells = 600) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

GlobalPlacerOptions fastOptions() {
  GlobalPlacerOptions options;
  options.maxIterations = 400;
  options.binsMax = 64;
  return options;
}

TEST(GlobalPlacerTest, ReachesTargetOverflow) {
  auto db = smallDesign();
  GlobalPlacer<double> placer(*db, fastOptions());
  const auto result = placer.run();
  EXPECT_LT(result.overflow, 0.10);
  EXPECT_GT(result.iterations, 30);
  EXPECT_LT(result.iterations, 400);
}

TEST(GlobalPlacerTest, HpwlWithinSaneRange) {
  auto db = smallDesign();
  const double reference = anchoredHpwlBound(*db);
  GlobalPlacer<double> placer(*db, fastOptions());
  const auto result = placer.run();
  // GP should beat the crude anchored placement and stay above zero.
  EXPECT_GT(result.hpwl, 0.0);
  EXPECT_LT(result.hpwl, reference);
}

TEST(GlobalPlacerTest, CommitsPositionsInsideDie) {
  auto db = smallDesign();
  GlobalPlacer<double> placer(*db, fastOptions());
  placer.run();
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    const Box<Coord> box = db->cellBox(i);
    EXPECT_GE(box.xl, die.xl - 1e-6);
    EXPECT_LE(box.xh, die.xh + 1e-6);
    EXPECT_GE(box.yl, die.yl - 1e-6);
    EXPECT_LE(box.yh, die.yh + 1e-6);
  }
}

TEST(GlobalPlacerTest, DeterministicForSameSeed) {
  auto db1 = smallDesign(43);
  auto db2 = smallDesign(43);
  GlobalPlacer<double> p1(*db1, fastOptions());
  GlobalPlacer<double> p2(*db2, fastOptions());
  const auto r1 = p1.run();
  const auto r2 = p2.run();
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
}

TEST(GlobalPlacerTest, Float32MatchesFloat64Closely) {
  auto db64 = smallDesign(47);
  auto db32 = smallDesign(47);
  GlobalPlacer<double> p64(*db64, fastOptions());
  GlobalPlacer<float> p32(*db32, fastOptions());
  const auto r64 = p64.run();
  const auto r32 = p32.run();
  // The paper reports "almost the same" quality between precisions;
  // allow a few percent on this small noisy instance.
  EXPECT_NEAR(r32.hpwl, r64.hpwl, 0.08 * r64.hpwl);
  EXPECT_LT(r32.overflow, 0.12);
}

TEST(GlobalPlacerTest, CallbackCanStopEarly) {
  auto db = smallDesign();
  GlobalPlacer<double> placer(*db, fastOptions());
  int calls = 0;
  const auto result = placer.run([&](const IterationStats& stats) {
    ++calls;
    return stats.iteration < 19;  // stop after 20 callbacks
  });
  EXPECT_EQ(calls, 20);
  EXPECT_EQ(result.iterations, 20);
}

TEST(GlobalPlacerTest, IterationStatsArePopulated) {
  auto db = smallDesign();
  GlobalPlacer<double> placer(*db, fastOptions());
  bool saw_valid = false;
  placer.run([&](const IterationStats& stats) {
    EXPECT_GE(stats.hpwl, 0.0);
    EXPECT_GE(stats.overflow, 0.0);
    EXPECT_GT(stats.gamma, 0.0);
    EXPECT_GT(stats.lambda, 0.0);
    saw_valid = true;
    return stats.iteration < 5;
  });
  EXPECT_TRUE(saw_valid);
}

TEST(GlobalPlacerTest, OverflowTrendsDownward) {
  auto db = smallDesign();
  GlobalPlacer<double> placer(*db, fastOptions());
  std::vector<double> overflow_trace;
  placer.run([&](const IterationStats& stats) {
    overflow_trace.push_back(stats.overflow);
    return true;
  });
  ASSERT_GT(overflow_trace.size(), 50u);
  // Start high, end low: compare first-10 and last-10 averages.
  double head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) {
    head += overflow_trace[i];
    tail += overflow_trace[overflow_trace.size() - 1 - i];
  }
  EXPECT_LT(tail, head * 0.3);
}

TEST(GlobalPlacerTest, AdamSolverConverges) {
  auto db = smallDesign(51, 400);
  GlobalPlacerOptions options = fastOptions();
  options.solver = SolverKind::kAdam;
  options.lr = 2.0;
  options.lrDecay = 0.995;
  options.maxIterations = 800;
  GlobalPlacer<double> placer(*db, options);
  const auto result = placer.run();
  EXPECT_LT(result.overflow, 0.25);
}

TEST(GlobalPlacerTest, SpreadInitAlsoConverges) {
  auto db = smallDesign(53, 400);
  GlobalPlacerOptions options = fastOptions();
  options.init = InitialPlacement::kSpread;
  GlobalPlacer<double> placer(*db, options);
  const auto result = placer.run();
  EXPECT_LT(result.overflow, 0.10);
}

TEST(GlobalPlacerTest, InflationIncreasesSpread) {
  // Inflating every cell 1.5x forces a wider spread: the resulting
  // physical (uninflated) overflow should be lower than baseline.
  auto db1 = smallDesign(57, 400);
  auto db2 = smallDesign(57, 400);
  GlobalPlacerOptions base = fastOptions();
  GlobalPlacer<double> p1(*db1, base);
  p1.run();

  GlobalPlacerOptions inflated = fastOptions();
  inflated.inflation.assign(db2->numMovable(), 1.5);
  GlobalPlacer<double> p2(*db2, inflated);
  p2.run();
  // The inflated run spaces cells out more, measured by pairwise overlap.
  EXPECT_LE(totalOverlapArea(*db2), totalOverlapArea(*db1) * 1.05);
}

TEST(GlobalPlacerTest, ContinuationFromPositions) {
  auto db = smallDesign(61, 400);
  GlobalPlacerOptions options = fastOptions();
  GlobalPlacer<double> first(*db, options);
  first.run([&](const IterationStats& stats) {
    return stats.overflow > 0.5;  // stop early at 50% overflow
  });
  auto x = first.nodeX();
  auto y = first.nodeY();
  GlobalPlacer<double> second(*db, options);
  second.setInitialPositions(x, y);
  const auto result = second.run();
  EXPECT_LT(result.overflow, 0.10);
}

TEST(GlobalPlacerTest, LseWirelengthModelConverges) {
  // Paper Sec. III-A: LSE is implemented alongside WA; both must drive
  // the GP to the overflow target with comparable quality.
  auto db_wa = smallDesign(65, 500);
  auto db_lse = smallDesign(65, 500);
  GlobalPlacerOptions wa = fastOptions();
  GlobalPlacerOptions lse = fastOptions();
  lse.wlModel = WirelengthModel::kLogSumExp;
  GlobalPlacer<double> p_wa(*db_wa, wa);
  GlobalPlacer<double> p_lse(*db_lse, lse);
  const auto r_wa = p_wa.run();
  const auto r_lse = p_lse.run();
  EXPECT_LT(r_lse.overflow, 0.10);
  EXPECT_NEAR(r_lse.hpwl, r_wa.hpwl, 0.15 * r_wa.hpwl);
}

TEST(GlobalPlacerTest, NoPreconditioningStillRuns) {
  auto db = smallDesign(63, 300);
  GlobalPlacerOptions options = fastOptions();
  options.precondition = false;
  options.maxIterations = 200;
  GlobalPlacer<double> placer(*db, options);
  const auto result = placer.run();
  EXPECT_TRUE(std::isfinite(result.hpwl));
}

}  // namespace
}  // namespace dreamplace
