#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <thread>

#include "common/counters.h"
#include "common/rng.h"
#include "fft/fft.h"
#include "fft/plan.h"

namespace dreamplace::fft {
namespace {

std::vector<std::complex<double>> randomComplex(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return x;
}

double maxError(const std::vector<std::complex<double>>& a,
                const std::vector<std::complex<double>>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

class FftSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const int n = GetParam();
  auto x = randomComplex(n, 100 + n);
  auto fast = fft(x, false);
  auto slow = naiveDft(x, false);
  EXPECT_LT(maxError(fast, slow), 1e-9 * n) << "n=" << n;
}

TEST_P(FftSizeTest, InverseRoundTrip) {
  const int n = GetParam();
  auto x = randomComplex(n, 200 + n);
  auto y = fft(fft(x, false), true);
  EXPECT_LT(maxError(x, y), 1e-10 * n);
}

// Power-of-two sizes take the radix-2 path; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 31,
                                           32, 100, 128, 257, 512));

TEST(FftTest, LinearityHolds) {
  const int n = 64;
  auto x = randomComplex(n, 1);
  auto y = randomComplex(n, 2);
  std::vector<std::complex<double>> sum(n);
  for (int i = 0; i < n; ++i) {
    sum[i] = 2.0 * x[i] + 3.0 * y[i];
  }
  auto fx = fft(x, false);
  auto fy = fft(y, false);
  auto fsum = fft(sum, false);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, std::abs(fsum[i] - (2.0 * fx[i] + 3.0 * fy[i])));
  }
  EXPECT_LT(err, 1e-10);
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(32, {0, 0});
  x[0] = {1, 0};
  auto spectrum = fft(x, false);
  for (const auto& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ParsevalEnergyConserved) {
  const int n = 128;
  auto x = randomComplex(n, 3);
  auto spectrum = fft(x, false);
  double time_energy = 0, freq_energy = 0;
  for (int i = 0; i < n; ++i) {
    time_energy += std::norm(x[i]);
    freq_energy += std::norm(spectrum[i]);
  }
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * time_energy);
}

class RfftSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RfftSizeTest, MatchesFullDft) {
  const int n = GetParam();
  Rng rng(42 + n);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.uniform(-2, 2);
  }
  std::vector<std::complex<double>> one_sided(n / 2 + 1);
  rfft(x.data(), one_sided.data(), n);
  std::vector<std::complex<double>> xc(x.begin(), x.end());
  auto full = naiveDft(xc, false);
  for (int k = 0; k <= n / 2; ++k) {
    EXPECT_LT(std::abs(one_sided[k] - full[k]), 1e-9 * n)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RfftSizeTest, RoundTrip) {
  const int n = GetParam();
  Rng rng(77 + n);
  std::vector<double> x(n), y(n);
  for (double& v : x) {
    v = rng.uniform(-5, 5);
  }
  std::vector<std::complex<double>> spectrum(n / 2 + 1);
  rfft(x.data(), spectrum.data(), n);
  irfft(spectrum.data(), y.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-10 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RfftSizeTest,
                         ::testing::Values(2, 4, 6, 8, 16, 20, 64, 256));

TEST(RfftTest, DcAndNyquistBinsAreReal) {
  const int n = 32;
  Rng rng(5);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.uniform(-1, 1);
  }
  std::vector<std::complex<double>> spectrum(n / 2 + 1);
  rfft(x.data(), spectrum.data(), n);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(spectrum[n / 2].imag(), 0.0, 1e-12);
}

TEST(FftFloatTest, SinglePrecisionAccuracy) {
  const int n = 256;
  Rng rng(9);
  std::vector<std::complex<float>> x(n);
  for (auto& v : x) {
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  auto fast = fft(x, false);
  auto slow = naiveDft(x, false);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, static_cast<double>(std::abs(fast[i] - slow[i])));
  }
  EXPECT_LT(err, 1e-3);  // float32 tolerance at n=256
}

// Regression for the twiddle-precision drift of the pre-plan engine: the
// sequential w *= wlen recurrence accumulated rounding error over long
// butterflies, visible as ~1e-2-level absolute error in float32 at
// n = 4096. The per-stage plan tables evaluate every twiddle with fresh
// double-precision trigonometry, keeping the worst bin well under 2e-3.
TEST(FftFloatTest, Float32AccuracyAt4096) {
  const int n = 4096;
  Rng rng(4096);
  std::vector<std::complex<float>> x(n);
  for (auto& v : x) {
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  auto fast = fft(x, false);
  auto slow = naiveDft(x, false);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, static_cast<double>(std::abs(fast[i] - slow[i])));
  }
  EXPECT_LT(err, 2e-3);
}

TEST(PlanCacheTest, SameKeyIsSharedAcrossLookups) {
  PlanCache::clear();
  auto a = PlanCache::complexPlan<double>(64, false);
  auto b = PlanCache::complexPlan<double>(64, false);
  auto c = PlanCache::complexPlan<double>(64, true);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(PlanCache::size(), 2u);
}

TEST(PlanCacheTest, ConcurrentRequestsBuildOnce) {
  PlanCache::clear();
  const auto creates_before =
      CounterRegistry::instance().value("fft/plan/create");
  // A non-power-of-two size so construction (Bluestein chirp + q-spectrum)
  // is slow enough for the two threads to genuinely overlap.
  constexpr int kSize = 1000;
  std::shared_ptr<const FftPlan<double>> got[2];
  std::atomic<int> ready{0};
  auto worker = [&](int slot) {
    ready.fetch_add(1);
    while (ready.load() < 2) {
    }
    got[slot] = PlanCache::complexPlan<double>(kSize, false);
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  ASSERT_TRUE(got[0] && got[1]);
  EXPECT_EQ(got[0].get(), got[1].get());
  EXPECT_EQ(CounterRegistry::instance().value("fft/plan/create"),
            creates_before + 1);

  // The shared plan must be usable concurrently (immutable + per-caller
  // scratch): both threads transform the same input and must agree.
  auto x = randomComplex(kSize, 11);
  std::vector<std::complex<double>> ya(x), yb(x);
  std::vector<std::complex<double>> sa(got[0]->scratchSize()),
      sb(got[0]->scratchSize());
  std::thread ta([&] { got[0]->execute(ya.data(), sa.data()); });
  std::thread tb([&] { got[1]->execute(yb.data(), sb.data()); });
  ta.join();
  tb.join();
  EXPECT_EQ(maxError(ya, yb), 0.0);
  EXPECT_LT(maxError(ya, naiveDft(x, false)), 1e-9 * kSize);
}

}  // namespace
}  // namespace dreamplace::fft
