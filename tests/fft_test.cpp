#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.h"
#include "fft/fft.h"

namespace dreamplace::fft {
namespace {

std::vector<std::complex<double>> randomComplex(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return x;
}

double maxError(const std::vector<std::complex<double>>& a,
                const std::vector<std::complex<double>>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

class FftSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const int n = GetParam();
  auto x = randomComplex(n, 100 + n);
  auto fast = fft(x, false);
  auto slow = naiveDft(x, false);
  EXPECT_LT(maxError(fast, slow), 1e-9 * n) << "n=" << n;
}

TEST_P(FftSizeTest, InverseRoundTrip) {
  const int n = GetParam();
  auto x = randomComplex(n, 200 + n);
  auto y = fft(fft(x, false), true);
  EXPECT_LT(maxError(x, y), 1e-10 * n);
}

// Power-of-two sizes take the radix-2 path; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 31,
                                           32, 100, 128, 257, 512));

TEST(FftTest, LinearityHolds) {
  const int n = 64;
  auto x = randomComplex(n, 1);
  auto y = randomComplex(n, 2);
  std::vector<std::complex<double>> sum(n);
  for (int i = 0; i < n; ++i) {
    sum[i] = 2.0 * x[i] + 3.0 * y[i];
  }
  auto fx = fft(x, false);
  auto fy = fft(y, false);
  auto fsum = fft(sum, false);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, std::abs(fsum[i] - (2.0 * fx[i] + 3.0 * fy[i])));
  }
  EXPECT_LT(err, 1e-10);
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(32, {0, 0});
  x[0] = {1, 0};
  auto spectrum = fft(x, false);
  for (const auto& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ParsevalEnergyConserved) {
  const int n = 128;
  auto x = randomComplex(n, 3);
  auto spectrum = fft(x, false);
  double time_energy = 0, freq_energy = 0;
  for (int i = 0; i < n; ++i) {
    time_energy += std::norm(x[i]);
    freq_energy += std::norm(spectrum[i]);
  }
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * time_energy);
}

class RfftSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RfftSizeTest, MatchesFullDft) {
  const int n = GetParam();
  Rng rng(42 + n);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.uniform(-2, 2);
  }
  std::vector<std::complex<double>> one_sided(n / 2 + 1);
  rfft(x.data(), one_sided.data(), n);
  std::vector<std::complex<double>> xc(x.begin(), x.end());
  auto full = naiveDft(xc, false);
  for (int k = 0; k <= n / 2; ++k) {
    EXPECT_LT(std::abs(one_sided[k] - full[k]), 1e-9 * n)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RfftSizeTest, RoundTrip) {
  const int n = GetParam();
  Rng rng(77 + n);
  std::vector<double> x(n), y(n);
  for (double& v : x) {
    v = rng.uniform(-5, 5);
  }
  std::vector<std::complex<double>> spectrum(n / 2 + 1);
  rfft(x.data(), spectrum.data(), n);
  irfft(spectrum.data(), y.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-10 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RfftSizeTest,
                         ::testing::Values(2, 4, 6, 8, 16, 20, 64, 256));

TEST(RfftTest, DcAndNyquistBinsAreReal) {
  const int n = 32;
  Rng rng(5);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.uniform(-1, 1);
  }
  std::vector<std::complex<double>> spectrum(n / 2 + 1);
  rfft(x.data(), spectrum.data(), n);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(spectrum[n / 2].imag(), 0.0, 1e-12);
}

TEST(FftFloatTest, SinglePrecisionAccuracy) {
  const int n = 256;
  Rng rng(9);
  std::vector<std::complex<float>> x(n);
  for (auto& v : x) {
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  auto fast = fft(x, false);
  auto slow = naiveDft(x, false);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    err = std::max(err, static_cast<double>(std::abs(fast[i] - slow[i])));
  }
  EXPECT_LT(err, 1e-3);  // float32 tolerance at n=256
}

}  // namespace
}  // namespace dreamplace::fft
