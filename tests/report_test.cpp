// Flow run report (place/report.h) and the count-based regression gate
// (place/report_check.h): JSON schema golden test, flat-parser unit
// tests, and check pass/fail behavior on fresh vs doctored reports.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/netlist_generator.h"
#include "place/placer.h"
#include "place/report.h"
#include "place/report_check.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<Database> reportDesign() {
  GeneratorConfig cfg;
  cfg.numCells = 600;
  cfg.utilization = 0.7;
  cfg.seed = 7;
  return generateNetlist(cfg);
}

PlacerOptions reportFlow() {
  PlacerOptions options;
  options.gp.maxIterations = 300;
  options.gp.binsMax = 64;
  options.dp.passes = 1;
  return options;
}

/// Runs one reporting flow per process and caches the parsed document.
const FlatJson& freshReport() {
  static FlatJson* cached = nullptr;
  if (cached == nullptr) {
    // Per-process dir: ctest -j runs sibling ReportTest cases in separate
    // processes, each building its own fresh report; a shared path would
    // let one process's cleanup race another's reads.
    const fs::path dir = fs::temp_directory_path() /
                         ("dp_report_test_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    const fs::path json = dir / "report.json";
    const fs::path text = dir / "report.txt";

    auto db = reportDesign();
    PlacerOptions options = reportFlow();
    options.reportJson = json.string();
    options.reportText = text.string();
    options.telemetryLabel = "report_test";
    const FlowResult result = placeDesign(*db, options);
    EXPECT_TRUE(result.legal);

    auto* flat = new FlatJson;
    std::string error;
    EXPECT_TRUE(parseJsonFlat(readFile(json), *flat, &error)) << error;
    // The text rendering exists and mentions the label.
    const std::string rendered = readFile(text);
    EXPECT_NE(rendered.find("report_test"), std::string::npos);
    EXPECT_NE(rendered.find("stages:"), std::string::npos);
    fs::remove_all(dir);
    cached = flat;
  }
  return *cached;
}

TEST(ReportTest, JsonSchemaGolden) {
  const FlatJson& report = freshReport();
  EXPECT_EQ(report.strings.at("schema"), "dreamplace.run_report.v1");
  EXPECT_EQ(report.strings.at("label"), "report_test");
  EXPECT_EQ(report.strings.at("config.precision"), "float64");

  // Pinned paths the regression gate and dashboards rely on.
  for (const char* path : {
           "design.cells", "design.movable", "design.nets", "design.pins",
           "result.hpwl", "result.overflow", "result.gp_iterations",
           "result.legal", "stages.gp_s", "stages.lg_s", "stages.dp_s",
           "stages.io_s", "stages.total_s", "parallel.threads",
           "parallel.busy_s", "parallel.capacity_s", "parallel.utilization",
           "simd.enabled", "simd.width_f32", "simd.width_f64",
           "gp_runs.0.iterations",
           "gp_runs.0.overflow", "timing.gp.count", "timing.gp.incl_s",
           "timing.gp.self_s", "counters.ops/density/evaluate",
           "counters.ops/electrostatics/solve",
           "memory.tracked.db.current_bytes",
           "memory.tracked.db.peak_bytes", "memory.process.vm_rss_bytes",
           "memory.process.valid",
       }) {
    EXPECT_TRUE(report.hasNumber(path)) << path;
  }

  // The full options echo under config.options (PlacerOptions::toJson):
  // complete, consistent with the summary fields, and faithful to the
  // requesting options.
  for (const char* path : {
           "config.options.threads", "config.options.run_global_placement",
           "config.options.run_detailed_placement",
           "config.options.routability", "config.options.gp.target_density",
           "config.options.gp.max_iterations", "config.options.gp.seed",
           "config.options.gp.bins_max", "config.options.gp.lr",
           "config.options.dp.passes", "config.options.dp.enable_ism",
           "config.options.greedy.row_search_window",
           "config.options.abacus.row_search_window",
           "config.options.checkpoint.every_iterations",
       }) {
    EXPECT_TRUE(report.hasNumber(path)) << path;
  }
  // Checkpointing was off: the config echoes the empty paths, and the
  // result records a fallback-free legalization.
  EXPECT_EQ(report.strings.at("config.options.checkpoint.dir"), "");
  EXPECT_EQ(report.strings.at("config.options.checkpoint.name"), "");
  EXPECT_EQ(report.strings.at("config.options.checkpoint.resume_from"), "");
  EXPECT_EQ(report.numbers.at("config.options.run_global_placement"), 1.0);
  EXPECT_EQ(report.numbers.at("result.lg_fallback"), 0.0);
  EXPECT_EQ(report.numbers.at("result.lg_failed_cells"), 0.0);
  EXPECT_EQ(report.strings.at("config.options.precision"),
            report.strings.at("config.precision"));
  EXPECT_EQ(report.strings.at("config.options.gp.solver"),
            report.strings.at("config.solver"));
  EXPECT_EQ(report.strings.at("config.options.gp.dct"),
            report.strings.at("config.dct"));
  EXPECT_EQ(report.numbers.at("config.options.gp.max_iterations"), 300.0);
  EXPECT_EQ(report.numbers.at("config.options.gp.bins_max"), 64.0);
  EXPECT_EQ(report.numbers.at("config.options.dp.passes"), 1.0);
  // Routability was off, so its sub-options are omitted.
  EXPECT_FALSE(report.hasNumber("config.options.routability_options.max_rounds"));

  EXPECT_EQ(report.numbers.at("design.movable"), 600.0);  // pads excluded
  EXPECT_EQ(report.numbers.at("timing.gp.count"), 1.0);
  EXPECT_GE(report.numbers.at("parallel.threads"), 1.0);
  EXPECT_GE(report.numbers.at("parallel.utilization"), 0.0);
  EXPECT_LE(report.numbers.at("parallel.utilization"), 1.0);
  // The simd section mirrors the build: lane widths are >= 1 always, and
  // the active width counter published by the wirelength op matches.
  EXPECT_FALSE(report.strings.at("simd.isa").empty());
  EXPECT_GE(report.numbers.at("simd.width_f32"), 1.0);
  EXPECT_GE(report.numbers.at("simd.width_f64"), 1.0);
  EXPECT_GE(report.numbers.at("counters.simd/width"), 1.0);
  EXPECT_GE(report.numbers.at("counters.simd/vexp_calls"), 1.0);
  // Self <= inclusive holds in the exported stats too.
  EXPECT_LE(report.numbers.at("timing.gp.self_s"),
            report.numbers.at("timing.gp.incl_s") + 1e-12);
  // The GP telemetry summary agrees with the flow result.
  EXPECT_EQ(report.numbers.at("gp_runs.0.iterations"),
            report.numbers.at("result.gp_iterations"));
}

TEST(ReportTest, CheckedInBaselinePassesOnFreshReport) {
  // Locate tools/report_baseline.json relative to this source file so the
  // test exercises the exact file CI uses.
  const fs::path baseline_path =
      fs::path(__FILE__).parent_path().parent_path() / "tools" /
      "report_baseline.json";
  ASSERT_TRUE(fs::exists(baseline_path)) << baseline_path;

  FlatJson baseline;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(readFile(baseline_path), baseline, &error))
      << error;

  std::vector<CheckResult> results;
  ASSERT_TRUE(checkReport(freshReport(), baseline, results, &error)) << error;
  EXPECT_GE(results.size(), 10u);
  for (const CheckResult& result : results) {
    EXPECT_TRUE(result.passed) << result.description << ": " << result.detail;
  }
}

TEST(ReportTest, CheckFailsOnDoctoredReport) {
  FlatJson doctored = freshReport();
  doctored.numbers["counters.ops/electrostatics/ws_alloc"] = 99;

  FlatJson baseline;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(
      R"({"checks": [{"path": "counters.ops/electrostatics/ws_alloc",
                      "op": "eq", "value": 1}]})",
      baseline, &error))
      << error;

  std::vector<CheckResult> results;
  ASSERT_TRUE(checkReport(doctored, baseline, results, &error)) << error;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].passed);
  EXPECT_NE(results[0].detail.find("actual 99"), std::string::npos);
}

TEST(ReportTest, CheckFailsOnMissingPath) {
  FlatJson report;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(R"({"a": 1})", report, &error)) << error;

  FlatJson baseline;
  ASSERT_TRUE(parseJsonFlat(
      R"({"checks": [{"path": "b", "op": "eq", "value": 0},
                     {"path": "c", "op": "eq", "value": 0,
                      "missing_ok": true},
                     {"path": "d", "op": "ge", "value": 1,
                      "missing_ok": true},
                     {"path": "a", "op": "ge", "value": 5,
                      "missing_ok": true}]})",
      baseline, &error))
      << error;
  std::vector<CheckResult> results;
  ASSERT_TRUE(checkReport(report, baseline, results, &error)) << error;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].passed);  // missing without missing_ok
  EXPECT_TRUE(results[1].passed);   // missing_ok: absent path is skipped
  EXPECT_TRUE(results[2].passed);   // skipped even when 0 would fail "ge 1"
  EXPECT_FALSE(results[3].passed);  // present values are still constrained
}

TEST(ReportTest, CheckRejectsMalformedBaseline) {
  FlatJson report;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(R"({"a": 1})", report, &error));

  FlatJson baseline;
  std::vector<CheckResult> results;
  // No checks at all.
  ASSERT_TRUE(parseJsonFlat(R"({"schema": "x"})", baseline, &error));
  EXPECT_FALSE(checkReport(report, baseline, results, &error));
  // Unknown op.
  ASSERT_TRUE(parseJsonFlat(
      R"({"checks": [{"path": "a", "op": "between", "value": 1}]})",
      baseline, &error));
  EXPECT_FALSE(checkReport(report, baseline, results, &error));
  // eq_path without "other".
  ASSERT_TRUE(parseJsonFlat(R"({"checks": [{"path": "a", "op": "eq_path"}]})",
                            baseline, &error));
  EXPECT_FALSE(checkReport(report, baseline, results, &error));
}

TEST(FlatJsonTest, ParsesNestedObjectsArraysAndScalars) {
  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(
      R"({"a": {"b/c": 2.5, "d": "text"}, "list": [1, {"x": true}],
          "none": null, "neg": -3e2})",
      flat, &error))
      << error;
  EXPECT_EQ(flat.numbers.at("a.b/c"), 2.5);
  EXPECT_EQ(flat.strings.at("a.d"), "text");
  EXPECT_EQ(flat.numbers.at("list.0"), 1.0);
  EXPECT_EQ(flat.numbers.at("list.1.x"), 1.0);
  EXPECT_EQ(flat.numbers.at("neg"), -300.0);
  EXPECT_FALSE(flat.hasNumber("none"));  // null leaves are skipped
}

TEST(FlatJsonTest, ParsesStringEscapes) {
  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(R"({"k": "a\"b\\c\nd"})", flat, &error)) << error;
  EXPECT_EQ(flat.strings.at("k"), "a\"b\\c\nd");
}

TEST(FlatJsonTest, RejectsMalformedDocuments) {
  FlatJson flat;
  std::string error;
  EXPECT_FALSE(parseJsonFlat("{", flat, &error));
  EXPECT_FALSE(parseJsonFlat(R"({"a": })", flat, &error));
  EXPECT_FALSE(parseJsonFlat(R"({"a": 1} trailing)", flat, &error));
  EXPECT_FALSE(parseJsonFlat(R"({"a" 1})", flat, &error));
  EXPECT_FALSE(parseJsonFlat("", flat, &error));
}

TEST(ReportTest, RunReportRoundTripsThroughItsOwnParser) {
  // toJson() of a hand-built report parses cleanly — the writer and the
  // gate's parser agree on the dialect.
  RunReport report;
  report.label = "round\"trip";
  report.numCells = 3;
  report.counters["a/b"] = 7;
  TimingStat stat;
  stat.count = 2;
  stat.seconds = 1.0;
  stat.selfSeconds = 0.5;
  report.timing["k"] = stat;
  MemoryTracker::Usage usage;
  usage.currentBytes = 10;
  usage.peakBytes = 20;
  report.trackedMemory["m"] = usage;

  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(report.toJson(), flat, &error)) << error;
  EXPECT_EQ(flat.strings.at("label"), "round\"trip");
  EXPECT_EQ(flat.numbers.at("counters.a/b"), 7.0);
  EXPECT_EQ(flat.numbers.at("timing.k.self_s"), 0.5);
  EXPECT_EQ(flat.numbers.at("memory.tracked.m.peak_bytes"), 20.0);
}

}  // namespace
}  // namespace dreamplace
