#include <gtest/gtest.h>

#include <cmath>

#include "autograd/objective.h"
#include "autograd/optimizers.h"

namespace dreamplace {
namespace {

/// Convex quadratic f(p) = 1/2 sum_i a_i (p_i - c_i)^2.
template <typename T>
class Quadratic final : public ObjectiveFunction<T> {
 public:
  Quadratic(std::vector<double> a, std::vector<double> c)
      : a_(std::move(a)), c_(std::move(c)) {}

  std::size_t size() const override { return a_.size(); }

  double evaluate(std::span<const T> p, std::span<T> g) override {
    double value = 0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const double d = static_cast<double>(p[i]) - c_[i];
      value += 0.5 * a_[i] * d * d;
      g[i] = static_cast<T>(a_[i] * d);
    }
    return value;
  }

 private:
  std::vector<double> a_;
  std::vector<double> c_;
};

/// Rosenbrock in 2-D: a classic non-convex stress test.
template <typename T>
class Rosenbrock final : public ObjectiveFunction<T> {
 public:
  std::size_t size() const override { return 2; }
  double evaluate(std::span<const T> p, std::span<T> g) override {
    const double x = p[0], y = p[1];
    const double value =
        (1 - x) * (1 - x) + 100 * (y - x * x) * (y - x * x);
    g[0] = static_cast<T>(-2 * (1 - x) - 400 * x * (y - x * x));
    g[1] = static_cast<T>(200 * (y - x * x));
    return value;
  }
};

TEST(NesterovTest, ConvergesOnQuadratic) {
  Quadratic<double> obj({1.0, 4.0, 0.25}, {3.0, -2.0, 10.0});
  NesterovOptimizer<double> opt(obj, {0.0, 0.0, 0.0});
  double value = 0;
  for (int i = 0; i < 400; ++i) {
    value = opt.step();
  }
  EXPECT_LT(value, 1e-7);
  EXPECT_NEAR(opt.params()[0], 3.0, 1e-4);
  EXPECT_NEAR(opt.params()[1], -2.0, 1e-4);
  EXPECT_NEAR(opt.params()[2], 10.0, 1e-3);
}

TEST(NesterovTest, LineSearchAdaptsToCurvatureScale) {
  // Extremely stiff quadratic: a fixed-step method with lr=1 would blow
  // up; the Lipschitz line search must keep it stable.
  Quadratic<double> obj({1e4, 1.0}, {1.0, 1.0});
  NesterovOptimizer<double> opt(obj, {10.0, -10.0});
  const double initial = 0.5 * 1e4 * 81 + 0.5 * 121;  // f(10,-10)
  double value = 0;
  // Condition number 1e4: accelerated gradient needs ~sqrt(kappa)*ln(1/eps)
  // iterations. (The placer avoids this regime with its Jacobi
  // preconditioner; here we check the raw solver stays stable and makes
  // the theoretically expected progress.)
  for (int i = 0; i < 3000; ++i) {
    value = opt.step();
    ASSERT_TRUE(std::isfinite(value)) << "diverged at iter " << i;
  }
  EXPECT_LT(value, initial * 1e-8);
}

TEST(NesterovTest, ProgressOnRosenbrock) {
  Rosenbrock<double> obj;
  NesterovOptimizer<double> opt(obj, {-1.2, 1.0});
  const double initial = 24.2;  // f(-1.2, 1)
  double value = initial;
  for (int i = 0; i < 800; ++i) {
    value = opt.step();
  }
  EXPECT_LT(value, initial / 100);
}

TEST(NesterovTest, ProjectionKeepsIterateInBox) {
  Quadratic<double> obj({1.0}, {100.0});  // minimum far outside the box
  NesterovOptimizer<double>::Options options;
  options.projection = [](std::vector<double>& p) {
    p[0] = std::clamp(p[0], -1.0, 5.0);
  };
  NesterovOptimizer<double> opt(obj, {0.0}, options);
  for (int i = 0; i < 100; ++i) {
    opt.step();
    ASSERT_LE(opt.params()[0], 5.0 + 1e-12);
    ASSERT_GE(opt.params()[0], -1.0 - 1e-12);
  }
  EXPECT_NEAR(opt.params()[0], 5.0, 1e-6);  // lands on the boundary
}

TEST(NesterovTest, EvaluationsCounted) {
  Quadratic<double> obj({1.0}, {0.0});
  NesterovOptimizer<double> opt(obj, {1.0});
  opt.step();
  EXPECT_GE(opt.evaluations(), 2);  // init eval + at least one trial
}

/// All momentum solvers should solve a benign quadratic.
class SolverKindTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverKindTest, ConvergesOnQuadratic) {
  Quadratic<double> obj({1.0, 2.0}, {1.0, -1.0});
  auto opt = makeOptimizer<double>(GetParam(), obj, {5.0, 5.0},
                                   /*lr=*/0.05, /*lrDecay=*/1.0);
  double value = 0;
  for (int i = 0; i < 2000; ++i) {
    value = opt->step();
  }
  EXPECT_LT(value, 1e-3) << solverName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverKindTest,
                         ::testing::Values(SolverKind::kNesterov,
                                           SolverKind::kAdam,
                                           SolverKind::kSgdMomentum,
                                           SolverKind::kRmsProp));

TEST(AdamTest, LearningRateDecayShrinksSteps) {
  Quadratic<double> obj({1.0}, {1000.0});  // far minimum: steps ~ lr
  AdamOptimizer<double>::Options options;
  options.lr = 1.0;
  options.lrDecay = 0.5;  // aggressive decay
  AdamOptimizer<double> opt(obj, {0.0}, options);
  double prev = 0;
  double first_step = 0, fifth_step = 0;
  for (int i = 0; i < 5; ++i) {
    opt.step();
    const double step = std::abs(opt.params()[0] - prev);
    if (i == 0) first_step = step;
    if (i == 4) fifth_step = step;
    prev = opt.params()[0];
  }
  EXPECT_LT(fifth_step, first_step * 0.2);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Quadratic<double> obj({1.0}, {10.0});
  SgdMomentumOptimizer<double>::Options with;
  with.lr = 0.01;
  with.momentum = 0.9;
  SgdMomentumOptimizer<double>::Options without;
  without.lr = 0.01;
  without.momentum = 0.0;
  SgdMomentumOptimizer<double> a(obj, {0.0}, with);
  SgdMomentumOptimizer<double> b(obj, {0.0}, without);
  double va = 0, vb = 0;
  for (int i = 0; i < 50; ++i) {
    va = a.step();
    vb = b.step();
  }
  EXPECT_LT(va, vb);  // momentum should be ahead on this smooth problem
}

TEST(OptimizerTest, ResetClearsState) {
  Quadratic<double> obj({1.0}, {1.0});
  AdamOptimizer<double> opt(obj, {0.0});
  for (int i = 0; i < 10; ++i) {
    opt.step();
  }
  const double after_ten = opt.params()[0];
  opt.mutableParams()[0] = 0.0;
  opt.reset();
  for (int i = 0; i < 10; ++i) {
    opt.step();
  }
  EXPECT_NEAR(opt.params()[0], after_ten, 1e-12);
}

TEST(CompositeObjectiveTest, WeightsAndTermTracking) {
  Quadratic<double> a({2.0}, {0.0});  // f = p^2
  Quadratic<double> b({4.0}, {0.0});  // f = 2 p^2
  CompositeObjective<double> composite;
  composite.addTerm(&a, 1.0);
  composite.addTerm(&b, 0.5);
  std::vector<double> p{3.0};
  std::vector<double> g{0.0};
  const double value = composite.evaluate(p, g);
  // 1*(0.5*2*9) + 0.5*(0.5*4*9) = 9 + 9 = 18; grad = 2*3 + 0.5*4*3 = 12.
  EXPECT_DOUBLE_EQ(value, 18.0);
  EXPECT_DOUBLE_EQ(g[0], 12.0);
  EXPECT_DOUBLE_EQ(composite.lastTermValue(0), 9.0);
  EXPECT_DOUBLE_EQ(composite.lastTermValue(1), 18.0);
  composite.setWeight(1, 0.0);
  const double value2 = composite.evaluate(p, g);
  EXPECT_DOUBLE_EQ(value2, 9.0);
  EXPECT_DOUBLE_EQ(g[0], 6.0);
}

TEST(OptimizerFloatTest, NesterovWorksInSinglePrecision) {
  Quadratic<float> obj({1.0, 1.0}, {2.0, -3.0});
  NesterovOptimizer<float> opt(obj, {0.0f, 0.0f});
  double value = 0;
  for (int i = 0; i < 200; ++i) {
    value = opt.step();
  }
  EXPECT_LT(value, 1e-4);
}

}  // namespace
}  // namespace dreamplace
