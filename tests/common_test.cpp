#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <set>
#include <thread>

#include "common/counters.h"
#include "common/geometry.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dreamplace {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a() == b());
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntNoModuloBias) {
  Rng rng(11);
  // Histogram of uniformInt(3) should be flat within tolerance.
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.uniformInt(3)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 400);
  }
}

TEST(RngTest, UniformIntZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.uniformInt(0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(BoxTest, BasicQueries) {
  Box<double> box{0, 0, 10, 20};
  EXPECT_DOUBLE_EQ(box.width(), 10);
  EXPECT_DOUBLE_EQ(box.height(), 20);
  EXPECT_DOUBLE_EQ(box.area(), 200);
  EXPECT_DOUBLE_EQ(box.centerX(), 5);
  EXPECT_DOUBLE_EQ(box.centerY(), 10);
  EXPECT_TRUE(box.contains(0, 0));
  EXPECT_FALSE(box.contains(10, 0));  // [lo, hi) semantics
}

TEST(BoxTest, OverlapArea) {
  Box<double> a{0, 0, 10, 10};
  Box<double> b{5, 5, 15, 15};
  EXPECT_DOUBLE_EQ(a.overlapArea(b), 25);
  EXPECT_TRUE(a.overlaps(b));
  Box<double> c{10, 0, 20, 10};  // abutting, no overlap
  EXPECT_DOUBLE_EQ(a.overlapArea(c), 0);
  EXPECT_FALSE(a.overlaps(c));
  Box<double> d{20, 20, 30, 30};
  EXPECT_DOUBLE_EQ(a.overlapArea(d), 0);
}

TEST(BoxTest, ContainsBox) {
  Box<double> outer{0, 0, 100, 100};
  EXPECT_TRUE(outer.containsBox({10, 10, 20, 20}));
  EXPECT_FALSE(outer.containsBox({90, 90, 110, 110}));
}

TEST(GeometryTest, OverlapLength) {
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, 5.0, 15.0), 5.0);
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, 10.0, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, -5.0, 100.0), 10.0);
}

TEST(GeometryTest, ClampSafe) {
  EXPECT_DOUBLE_EQ(clampSafe(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clampSafe(-5.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clampSafe(15.0, 0.0, 10.0), 10.0);
  // Inverted bounds fall back to lo instead of UB.
  EXPECT_DOUBLE_EQ(clampSafe(5.0, 10.0, 0.0), 10.0);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.elapsed(), 0.0);
}

TEST(TimingRegistryTest, AccumulatesAndReports) {
  auto& registry = TimingRegistry::instance();
  registry.clear();
  registry.add("stage_a", 1.0);
  registry.add("stage_a", 0.5);
  registry.add("stage_a/sub", 0.25);
  registry.add("stage_b", 2.0);
  EXPECT_DOUBLE_EQ(registry.total("stage_a"), 1.5);
  EXPECT_DOUBLE_EQ(registry.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(registry.totalPrefix("stage_a"), 1.75);
  const std::string report = registry.report();
  EXPECT_NE(report.find("stage_a"), std::string::npos);
  EXPECT_NE(report.find("stage_b"), std::string::npos);
  registry.clear();
  EXPECT_DOUBLE_EQ(registry.total("stage_a"), 0.0);
}

TEST(TimingRegistryTest, TotalPrefixIsStringPrefix) {
  auto& registry = TimingRegistry::instance();
  registry.clear();
  registry.add("gp", 1.0);
  registry.add("gp/op/wirelength", 2.0);
  registry.add("gp/op/density", 4.0);
  registry.add("gq", 8.0);  // sorts after every "gp*" key
  EXPECT_DOUBLE_EQ(registry.totalPrefix("gp/op"), 6.0);
  EXPECT_DOUBLE_EQ(registry.totalPrefix("gp"), 7.0);
  EXPECT_DOUBLE_EQ(registry.totalPrefix(""), 15.0);
  EXPECT_DOUBLE_EQ(registry.totalPrefix("nope"), 0.0);
  registry.clear();
}

TEST(TimingRegistryTest, ScopedTimerAdds) {
  auto& registry = TimingRegistry::instance();
  registry.clear();
  {
    ScopedTimer scope("scoped_key");
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) {
      x = x + i;
    }
  }
  EXPECT_GT(registry.total("scoped_key"), 0.0);
  registry.clear();
}

TEST(CounterRegistryTest, AddValueAndPrefix) {
  auto& registry = CounterRegistry::instance();
  registry.clear();
  registry.add("ops/a");
  registry.add("ops/a", 4);
  registry.add("ops/b", 2);
  registry.add("fft/forward", 3);
  EXPECT_EQ(registry.value("ops/a"), 5);
  EXPECT_EQ(registry.value("missing"), 0);
  EXPECT_EQ(registry.totalPrefix("ops"), 7);
  EXPECT_EQ(registry.totalPrefix("fft"), 3);
  const std::string report = registry.report();
  EXPECT_NE(report.find("ops/a"), std::string::npos);
  EXPECT_NE(report.find("fft/forward"), std::string::npos);
  registry.clear();
  EXPECT_EQ(registry.value("ops/a"), 0);
}

TEST(CounterRegistryTest, ClearKeepsAddressesValid) {
  // Counter handles cache the atomic's address; clear() must zero in
  // place rather than erase, or cached handles would dangle.
  auto& registry = CounterRegistry::instance();
  std::atomic<CounterRegistry::Value>& cell = registry.counter("stable/key");
  cell.fetch_add(7);
  registry.clear();
  EXPECT_EQ(&registry.counter("stable/key"), &cell);
  EXPECT_EQ(cell.load(), 0);
  Counter handle("stable/key");
  handle.add(3);
  EXPECT_EQ(registry.value("stable/key"), 3);
  EXPECT_EQ(handle.value(), 3);
  registry.clear();
}

TEST(CounterRegistryTest, ConcurrentIncrementsAreLossless) {
  auto& registry = CounterRegistry::instance();
  registry.clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Counter c("concurrent/key");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.value("concurrent/key"), kThreads * kPerThread);
  registry.clear();
}

TEST(TraceRecorderTest, DisabledPathRecordsNothing) {
  auto& trace = TraceRecorder::instance();
  trace.setEnabled(false);
  trace.clear();
  trace.completeEvent("ignored", 0.5);
  trace.instantEvent("ignored");
  trace.counterEvent("ignored", 1.0);
  { TraceScope scope("ignored"); }
  { ScopedTimer timer("trace_test/ignored"); }
  EXPECT_EQ(trace.size(), 0u);
  TimingRegistry::instance().clear();
}

TEST(TraceRecorderTest, RecordsAllEventKinds) {
  auto& trace = TraceRecorder::instance();
  trace.clear();
  trace.setEnabled(true);
  trace.completeEvent("span", 0.001);
  trace.instantEvent("marker", "{\"k\":1}");
  trace.counterEvent("gauge", 42.5);
  { TraceScope scope("scoped"); }
  { ScopedTimer timer("trace_test/timed"); }
  trace.setEnabled(false);
  EXPECT_EQ(trace.size(), 5u);

  const std::string json = trace.toJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span\""), std::string::npos);
  EXPECT_NE(json.find("\"marker\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"scoped\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_test/timed\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  // Minimal structural validity: balanced braces/brackets outside strings.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    } else if (c == '[') {
      ++brackets;
    } else if (c == ']') {
      --brackets;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  trace.clear();
  TimingRegistry::instance().clear();
}

TEST(TraceRecorderTest, WriteJsonRoundTrips) {
  auto& trace = TraceRecorder::instance();
  trace.clear();
  trace.setEnabled(true);
  trace.completeEvent("file_span", 0.002);
  trace.setEnabled(false);
  const std::string path =
      ::testing::TempDir() + "trace_recorder_test.json";
  ASSERT_TRUE(trace.writeJson(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, trace.toJson());
  EXPECT_FALSE(trace.writeJson("/nonexistent-dir/trace.json"));
  trace.clear();
}

TEST(TraceRecorderTest, BufferIsBoundedAndDropsAreCounted) {
  auto& trace = TraceRecorder::instance();
  trace.clear();
  const std::size_t saved_capacity = trace.capacity();
  trace.setCapacity(4);
  trace.setEnabled(true);
  const auto dropped_before = CounterRegistry::instance().value("trace/dropped");
  for (int i = 0; i < 10; ++i) {
    trace.completeEvent("bounded", 0.001);
  }
  trace.setEnabled(false);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  // The counter is cumulative across clear()s; this test added exactly 6.
  EXPECT_EQ(CounterRegistry::instance().value("trace/dropped"),
            dropped_before + 6);
  // clear() resets the per-recording drop count and frees the buffer.
  trace.clear();
  EXPECT_EQ(trace.dropped(), 0u);
  trace.setCapacity(saved_capacity);
}

TEST(TraceRecorderTest, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}


TEST(LogTest, ParseLogLevelNamesAndAliases) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(parseLogLevel("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parseLogLevel("INFO", level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parseLogLevel("Warning", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parseLogLevel("warn", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parseLogLevel("error", level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(parseLogLevel("silent", level));
  EXPECT_EQ(level, LogLevel::kSilent);
  EXPECT_TRUE(parseLogLevel("off", level));
  EXPECT_EQ(level, LogLevel::kSilent);

  level = LogLevel::kInfo;
  EXPECT_FALSE(parseLogLevel("loud", level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure

  EXPECT_STREQ(logLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(logLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(logLevelName(LogLevel::kSilent), "silent");
}

TEST(LogTest, EnvDrivenLevelApplies) {
  const LogLevel saved = logLevel();
  ::setenv("DREAMPLACE_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(initLogLevelFromEnv());
  EXPECT_EQ(logLevel(), LogLevel::kError);
  ::setenv("DREAMPLACE_LOG_LEVEL", "not-a-level", 1);
  EXPECT_FALSE(initLogLevelFromEnv());
  EXPECT_EQ(logLevel(), LogLevel::kError);  // invalid value ignored
  ::unsetenv("DREAMPLACE_LOG_LEVEL");
  EXPECT_FALSE(initLogLevelFromEnv());
  setLogLevel(saved);
}

TEST(LogTest, LogScopeStacksPerThread) {
  EXPECT_EQ(LogScope::currentText(), "");
  {
    LogScope job("job", "eng7");
    EXPECT_EQ(LogScope::currentText(), "job=eng7");
    {
      LogScope design("design", "adaptec1");
      EXPECT_EQ(LogScope::currentText(), "job=eng7 design=adaptec1");
      // Scopes are thread-local: a fresh thread starts clean.
      std::string other;
      std::thread t([&other] { other = LogScope::currentText(); });
      t.join();
      EXPECT_EQ(other, "");
    }
    EXPECT_EQ(LogScope::currentText(), "job=eng7");
  }
  EXPECT_EQ(LogScope::currentText(), "");
}

TEST(LogTest, JsonlSinkMirrorsLinesWithScopes) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dp_log_test";
  fs::create_directories(dir);
  const fs::path path = dir / "log.jsonl";
  std::remove(path.c_str());

  // The sink sits behind the same threshold as stderr, so the test logs
  // at error level (one visible stderr line is acceptable test noise).
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::kError);
  setLogJsonPath(path.string());
  {
    LogScope job("job", "j\\1");
    logError("sink check %d", 42);
  }
  setLogJsonPath("");  // close so the buffer is flushed for reading
  setLogLevel(saved);

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"job\":\"j\\\\1\""), std::string::npos) << line;
  EXPECT_NE(line.find("sink check 42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
}

TEST(LogTest, JsonlSinkThrowsOnUnwritablePath) {
  try {
    setLogJsonPath("/nonexistent_dir_dp/log.jsonl");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("log: cannot write"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dreamplace
