#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/timer.h"

namespace dreamplace {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a() == b());
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntNoModuloBias) {
  Rng rng(11);
  // Histogram of uniformInt(3) should be flat within tolerance.
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.uniformInt(3)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 400);
  }
}

TEST(RngTest, UniformIntZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.uniformInt(0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(BoxTest, BasicQueries) {
  Box<double> box{0, 0, 10, 20};
  EXPECT_DOUBLE_EQ(box.width(), 10);
  EXPECT_DOUBLE_EQ(box.height(), 20);
  EXPECT_DOUBLE_EQ(box.area(), 200);
  EXPECT_DOUBLE_EQ(box.centerX(), 5);
  EXPECT_DOUBLE_EQ(box.centerY(), 10);
  EXPECT_TRUE(box.contains(0, 0));
  EXPECT_FALSE(box.contains(10, 0));  // [lo, hi) semantics
}

TEST(BoxTest, OverlapArea) {
  Box<double> a{0, 0, 10, 10};
  Box<double> b{5, 5, 15, 15};
  EXPECT_DOUBLE_EQ(a.overlapArea(b), 25);
  EXPECT_TRUE(a.overlaps(b));
  Box<double> c{10, 0, 20, 10};  // abutting, no overlap
  EXPECT_DOUBLE_EQ(a.overlapArea(c), 0);
  EXPECT_FALSE(a.overlaps(c));
  Box<double> d{20, 20, 30, 30};
  EXPECT_DOUBLE_EQ(a.overlapArea(d), 0);
}

TEST(BoxTest, ContainsBox) {
  Box<double> outer{0, 0, 100, 100};
  EXPECT_TRUE(outer.containsBox({10, 10, 20, 20}));
  EXPECT_FALSE(outer.containsBox({90, 90, 110, 110}));
}

TEST(GeometryTest, OverlapLength) {
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, 5.0, 15.0), 5.0);
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, 10.0, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(overlapLength(0.0, 10.0, -5.0, 100.0), 10.0);
}

TEST(GeometryTest, ClampSafe) {
  EXPECT_DOUBLE_EQ(clampSafe(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clampSafe(-5.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clampSafe(15.0, 0.0, 10.0), 10.0);
  // Inverted bounds fall back to lo instead of UB.
  EXPECT_DOUBLE_EQ(clampSafe(5.0, 10.0, 0.0), 10.0);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.elapsed(), 0.0);
}

TEST(TimingRegistryTest, AccumulatesAndReports) {
  auto& registry = TimingRegistry::instance();
  registry.clear();
  registry.add("stage_a", 1.0);
  registry.add("stage_a", 0.5);
  registry.add("stage_a/sub", 0.25);
  registry.add("stage_b", 2.0);
  EXPECT_DOUBLE_EQ(registry.total("stage_a"), 1.5);
  EXPECT_DOUBLE_EQ(registry.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(registry.totalPrefix("stage_a"), 1.75);
  const std::string report = registry.report();
  EXPECT_NE(report.find("stage_a"), std::string::npos);
  EXPECT_NE(report.find("stage_b"), std::string::npos);
  registry.clear();
  EXPECT_DOUBLE_EQ(registry.total("stage_a"), 0.0);
}

TEST(TimingRegistryTest, ScopedTimerAdds) {
  auto& registry = TimingRegistry::instance();
  registry.clear();
  {
    ScopedTimer scope("scoped_key");
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) {
      x += i;
    }
  }
  EXPECT_GT(registry.total("scoped_key"), 0.0);
  registry.clear();
}

}  // namespace
}  // namespace dreamplace
