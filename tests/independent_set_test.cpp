#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/metrics.h"
#include "dp/independent_set.h"
#include "gen/netlist_generator.h"
#include "lg/abacus_legalizer.h"

namespace dreamplace {
namespace {

TEST(HungarianTest, SolvesKnownInstances) {
  // Classic 3x3 with unique optimum: assignment (0->1, 1->0, 2->2), cost 5.
  std::vector<std::vector<double>> cost{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto a = solveAssignment(cost);
  double total = 0;
  for (int i = 0; i < 3; ++i) {
    total += cost[i][a[i]];
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(HungarianTest, IdentityWhenDiagonalDominant) {
  std::vector<std::vector<double>> cost{{0, 9, 9}, {9, 0, 9}, {9, 9, 0}};
  const auto a = solveAssignment(cost);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 2);
}

TEST(HungarianTest, OptimalOnRandomInstancesVsBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniformInt(4));  // 2..5
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (auto& row : cost) {
      for (double& c : row) {
        c = rng.uniform(0, 10);
      }
    }
    const auto a = solveAssignment(cost);
    double hungarian = 0;
    std::vector<char> seen(n, 0);
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LT(a[i], n);
      ASSERT_FALSE(seen[a[i]]) << "not a permutation";
      seen[a[i]] = 1;
      hungarian += cost[i][a[i]];
    }
    // Brute force.
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) {
      perm[i] = i;
    }
    double best = 1e18;
    do {
      double total = 0;
      for (int i = 0; i < n; ++i) {
        total += cost[i][perm[i]];
      }
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    ASSERT_NEAR(hungarian, best, 1e-9) << "trial " << trial;
  }
}

std::unique_ptr<Database> legalDesign(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.numCells = 500;
  cfg.seed = seed;
  auto db = generateNetlist(cfg);
  Rng rng(seed + 9);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(i,
                        rng.uniform(die.xl, die.xh - db->cellWidth(i)),
                        rng.uniform(die.yl, die.yh - db->cellHeight(i)));
  }
  AbacusLegalizer().run(*db);
  return db;
}

TEST(IsmTest, NeverIncreasesHpwlAndPreservesLegality) {
  auto db = legalDesign(151);
  const double before = hpwl(*db);
  const IsmResult result = independentSetMatching(*db, IsmOptions{});
  const double after = hpwl(*db);
  EXPECT_LE(after, before + 1e-6);
  EXPECT_GT(result.setsSolved, 0);
  EXPECT_TRUE(checkLegality(*db).legal);
  // The reported gain matches the actual HPWL delta (net-disjoint sets
  // make the per-set accounting exact).
  EXPECT_NEAR(before - after, result.hpwlGain, 1e-6 * before);
}

TEST(IsmTest, ImprovesRandomLegalPlacement) {
  auto db = legalDesign(157);
  const double before = hpwl(*db);
  const IsmResult result = independentSetMatching(*db, IsmOptions{});
  EXPECT_GT(result.cellsMoved, 0);
  EXPECT_LT(hpwl(*db), before);
}

TEST(IsmTest, RespectsSetSizeLimitAndBudget) {
  auto db = legalDesign(163);
  IsmOptions options;
  options.maxSetSize = 4;
  options.maxSetsPerPass = 3;
  const IsmResult result = independentSetMatching(*db, options);
  EXPECT_LE(result.setsSolved, 3);
  EXPECT_TRUE(checkLegality(*db).legal);
}

TEST(IsmTest, ConvergesToFixedPoint) {
  // Every applied permutation strictly decreases HPWL, so repeated passes
  // must drive the per-pass gain to (near) zero in bounded time.
  auto db = legalDesign(167);
  double gain = 0.0;
  int passes = 0;
  for (; passes < 40; ++passes) {
    gain = independentSetMatching(*db, IsmOptions{}).hpwlGain;
    if (gain < 1e-4 * hpwl(*db)) {
      break;
    }
  }
  EXPECT_LT(passes, 40) << "last gain " << gain;
  EXPECT_TRUE(checkLegality(*db).legal);
}

}  // namespace
}  // namespace dreamplace
