// Fig. 6 reproduction: number of "threads" (sub-rectangles) used to update
// one cell in density forward+backward, on bigblue4, float32 and float64.
//
// Paper shape: 2x2 is the sweet spot (~20-30% faster than 1x1); larger
// factors pay more index-math and contention than they save in balance.
// On one CPU core the balancing benefit is absent, so the expected local
// shape is: overhead grows with the subdivision factor, with 1x1/2x2
// close together — the ablation still quantifies the redundancy cost the
// paper trades against warp balance.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/netlist_generator.h"
#include "ops/density_op.h"

namespace {

using namespace dreamplace;
using namespace dreamplace::bench;

template <typename T>
struct Setup {
  std::unique_ptr<Database> db;
  std::unique_ptr<DensityOp<T>> op;
  std::vector<T> params;
  std::vector<T> grad;

  Setup(int subdivision) {
    const SuiteEntry entry = findSuiteEntry("bigblue4", benchScale(0.01));
    db = generateNetlist(entry.config);
    const auto grid = makeGrid<T>(db->dieArea(), db->numMovable());
    std::vector<T> fw, fh, nw, nh;
    computeFillers<T>(*db, 1.0, fw, fh);
    DensityOp<T>::makeNodeSizes(*db, fw, fh, nw, nh);
    typename DensityOp<T>::Options options;
    options.map.subdivision = subdivision;
    op = std::make_unique<DensityOp<T>>(*db, grid, nw, nh, options);
    const Index n = op->numNodes();
    params.resize(2 * static_cast<size_t>(n));
    grad.resize(params.size());
    Rng rng(5);
    const auto& die = db->dieArea();
    for (Index i = 0; i < n; ++i) {
      params[i] = static_cast<T>(rng.uniform(die.xl, die.xh));
      params[i + n] = static_cast<T>(rng.uniform(die.yl, die.yh));
    }
  }
};

template <typename T>
void densityFwdBwd(benchmark::State& state) {
  static std::unique_ptr<Setup<T>> setup;
  static int cached_subdivision = -1;
  const int subdivision = static_cast<int>(state.range(0));
  if (!setup || cached_subdivision != subdivision) {
    setup = std::make_unique<Setup<T>>(subdivision);
    cached_subdivision = subdivision;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setup->op->evaluate(std::span<const T>(setup->params),
                            std::span<T>(setup->grad)));
  }
}

}  // namespace

BENCHMARK(densityFwdBwd<float>)
    ->ArgName("kxk")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(densityFwdBwd<double>)
    ->ArgName("kxk")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
