// Table V reproduction: DAC 2012 routability-driven placement, float32.
//
// Paper columns per design: sHPWL, RC, and runtime split into NL
// (nonlinear optimization), GR (global routing), LG, DP. Expected shape:
// the two DREAMPlace configs reach near-identical sHPWL/RC, GR dominated
// by the (external, single-thread) router, and the fast config ahead on
// NL time.
#include <vector>

#include "bench_util.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  std::printf("Table V: DAC 2012 routability-driven placement "
              "(scale %.3f, float32)\n", scale);

  struct Config {
    const char* name;
    GlobalPlacerOptions gp;
  };
  const Config configs[] = {
      {"DREAMPlace (CPU kernels)", dreamplaceCpuGp()},
      {"DREAMPlace (fast kernels)", dreamplaceFastGp()},
  };

  for (const Config& config : configs) {
    std::printf("\n--- %s ---\n", config.name);
    std::printf("%-8s %8s | %12s %8s | %8s %8s %8s %8s %8s\n", "design",
                "#cells", "sHPWL", "RC", "NL(s)", "GR(s)", "LG(s)", "DP(s)",
                "Total");
    double shpwl_sum = 0;
    double rc_sum = 0;
    int n = 0;
    for (const SuiteEntry& entry : dac2012Suite(scale)) {
      auto db = generateNetlist(entry.config);
      PlacerOptions options;
      options.precision = Precision::kFloat32;  // matches the paper note
      options.gp = config.gp;
      options.routability = true;
      options.routabilityOptions.router.gridX = 48;
      options.routabilityOptions.router.gridY = 48;
      // Tight capacity: the synthetic suite is routed at ~80% of the
      // derived track budget so the congestion regime matches the DAC
      // 2012 designs (RC a few points above 100 before optimization).
      options.routabilityOptions.router.capacityFactor = 0.8;
      const FlowResult result = placeDesign(*db, options);
      std::printf("%-8s %8d | %12.4e %8.2f | %8.2f %8.2f %8.2f %8.2f %8.2f%s\n",
                  entry.name.c_str(), db->numMovable(), result.sHpwl,
                  result.rc, result.nlSeconds, result.grSeconds,
                  result.lgSeconds, result.dpSeconds, result.totalSeconds,
                  result.legal ? "" : "  [NOT LEGAL]");
      shpwl_sum += result.sHpwl;
      rc_sum += result.rc;
      ++n;
    }
    std::printf("%-8s %8s | %12.4e %8.2f |\n", "avg", "",
                shpwl_sum / n, rc_sum / n);
  }
  return 0;
}
