// Fig. 10 reproduction: WA wirelength forward+backward across the three
// kernel strategies (net-by-net, atomic/Alg. 1, merged/Alg. 2), float32,
// plus the single-thread vs multi-thread comparison of the net-by-net
// strategy.
//
// Paper shape (GPU): merged ~3.7x faster than net-by-net and ~1.8x
// faster than atomic. On CPU the paper reports atomic 20% SLOWER than
// net-by-net and merged >30% faster — that CPU ordering is what this
// bench reproduces: merged < net-by-net < atomic.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "common/parallel.h"
#include "gen/netlist_generator.h"
#include "ops/wirelength.h"

namespace {

using namespace dreamplace;
using namespace dreamplace::bench;

struct Setup {
  std::unique_ptr<Database> db;
  std::vector<float> params;
  std::vector<float> grad;

  explicit Setup(const char* design) {
    const SuiteEntry entry = findSuiteEntry(design, benchScale(0.01));
    db = generateNetlist(entry.config);
    const Index n = db->numMovable();
    params.resize(2 * static_cast<size_t>(n));
    grad.resize(params.size());
    for (Index i = 0; i < n; ++i) {
      params[i] = static_cast<float>(db->cellX(i) + db->cellWidth(i) / 2);
      params[i + n] =
          static_cast<float>(db->cellY(i) + db->cellHeight(i) / 2);
    }
  }
};

Setup& setupFor(const std::string& design) {
  static std::map<std::string, std::unique_ptr<Setup>> cache;
  auto& slot = cache[design];
  if (!slot) {
    slot = std::make_unique<Setup>(design.c_str());
  }
  return *slot;
}

void waKernel(benchmark::State& state, const std::string& design,
              WirelengthKernel kernel, int threads, bool simd = true) {
  Setup& setup = setupFor(design);
  WaWirelengthOp<float>::Options options;
  options.kernel = kernel;
  options.simd = simd;
  WaWirelengthOp<float> op(*setup.db, setup.db->numMovable(), options);
  op.setGamma(4.0);
  const int prev = ThreadPool::instance().threads();
  if (threads > 0) {
    ThreadPool::instance().setThreads(threads);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.evaluate(
        std::span<const float>(setup.params), std::span<float>(setup.grad)));
  }
  ThreadPool::instance().setThreads(prev);
}

void registerAll() {
  for (const char* design : {"adaptec1", "bigblue4"}) {
    const int hw = ThreadPool::instance().threads();
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/net_by_net").c_str(),
        [design](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kNetByNet, 0);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/atomic").c_str(),
        [design](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kAtomic, 0);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/merged").c_str(),
        [design](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kMerged, 0);
        })
        ->Unit(benchmark::kMillisecond);
    // SIMD ablation: the merged kernel with the ScalarVec (libm exp)
    // code path, the pre-SIMD numerics (docs/SIMD.md).
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/merged_scalar").c_str(),
        [design](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kMerged, 0, /*simd=*/false);
        })
        ->Unit(benchmark::kMillisecond);
    // Fig. 10(c): net-by-net, 1 thread vs all hardware threads.
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/net_by_net_1thread").c_str(),
        [design](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kNetByNet, 1);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("WA/") + design + "/net_by_net_" + std::to_string(hw) +
            "threads").c_str(),
        [design, hw](benchmark::State& s) {
          waKernel(s, design, WirelengthKernel::kNetByNet, hw);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

// Self-timed sweep for the machine-readable export (same pattern as
// bench_fig11_dct): best of `kIters` evaluate() calls after one warm-up,
// which also makes the ops/wirelength/* counter snapshot deterministic.
void writeJsonReport(const std::string& path) {
  constexpr int kIters = 3;
  BenchJsonWriter writer("fig10_wirelength");
  const struct {
    const char* name;
    WirelengthKernel kernel;
    bool simd;
  } kernels[] = {
      {"net_by_net", WirelengthKernel::kNetByNet, true},
      {"atomic", WirelengthKernel::kAtomic, true},
      {"merged", WirelengthKernel::kMerged, true},
      // The SIMD comparison row: same merged kernel through the
      // ScalarVec/libm-exp path. In a -DDREAMPLACE_SIMD=OFF build the two
      // merged rows coincide (Options::simd is moot), so diffing the pair
      // across build flavors isolates codegen (-mavx2) from algorithm.
      {"merged_scalar", WirelengthKernel::kMerged, false},
  };
  for (const char* design : {"adaptec1", "bigblue4"}) {
    Setup& setup = setupFor(design);
    for (const auto& k : kernels) {
      WaWirelengthOp<float>::Options options;
      options.kernel = k.kernel;
      options.simd = k.simd;
      WaWirelengthOp<float> op(*setup.db, setup.db->numMovable(), options);
      op.setGamma(4.0);
      const auto run = [&] {
        benchmark::DoNotOptimize(
            op.evaluate(std::span<const float>(setup.params),
                        std::span<float>(setup.grad)));
      };
      run();  // warm-up: allocates the kernel's workspaces
      double best_ms = 0;
      for (int i = 0; i < kIters; ++i) {
        Timer timer;
        run();
        const double ms = timer.elapsed() * 1000.0;
        if (i == 0 || ms < best_ms) {
          best_ms = ms;
        }
      }
      writer.addResult(std::string("WA/") + design + "/" + k.name,
                       setup.db->numMovable(), best_ms);
    }
  }
  writer.addCounterPrefix("ops/wirelength/");
  writer.addCounterPrefix("simd/");
  if (writer.write(path)) {
    std::printf("bench json written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench json: cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchJsonPath(argc, argv, "BENCH_fig10_wirelength.json");
  applyBenchThreads(argc, argv);
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    writeJsonReport(json_path);
  }
  return 0;
}
