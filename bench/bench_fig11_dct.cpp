// Fig. 11 reproduction: 2-D DCT/IDCT implementations, float32.
//
// Paper shape (512^2..4096^2 maps; scaled here to 128^2..1024^2 for one
// core): relative to the 2N-point-FFT row-column baseline, the N-point
// formulation (Alg. 3) is ~2.1x faster for DCT / ~1.3x for IDCT, and the
// single-pass 2-D N-point formulation (Alg. 4) ~5.0x / ~4.1x faster.
#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.h"
#include "fft/dct2d.h"

namespace {

using namespace dreamplace;
using fft::Dct2dAlgorithm;

std::vector<float>& mapOfSize(int m) {
  static std::map<int, std::vector<float>> cache;
  auto& map = cache[m];
  if (map.empty()) {
    Rng rng(m);
    map.resize(static_cast<size_t>(m) * m);
    for (float& v : map) {
      v = static_cast<float>(rng.uniform(0, 1));
    }
  }
  return map;
}

void dct2dBench(benchmark::State& state, Dct2dAlgorithm algo, bool inverse) {
  const int m = static_cast<int>(state.range(0));
  auto& in = mapOfSize(m);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    if (inverse) {
      fft::idct2d(in.data(), out.data(), m, m, algo);
    } else {
      fft::dct2d(in.data(), out.data(), m, m, algo);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(m);
}

void registerAll() {
  struct Variant {
    const char* name;
    Dct2dAlgorithm algo;
  };
  const Variant variants[] = {
      {"2N", Dct2dAlgorithm::kRowCol2N},
      {"N", Dct2dAlgorithm::kRowColN},
      {"2D-N", Dct2dAlgorithm::kFft2dN},
  };
  for (const auto& v : variants) {
    for (bool inverse : {false, true}) {
      auto* bench = benchmark::RegisterBenchmark(
          (std::string(inverse ? "IDCT-" : "DCT-") + v.name).c_str(),
          [algo = v.algo, inverse](benchmark::State& s) {
            dct2dBench(s, algo, inverse);
          });
      bench->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Unit(
          benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
