// Fig. 11 reproduction: 2-D DCT/IDCT implementations, float32.
//
// Paper shape (512^2..4096^2 maps; scaled here to 128^2..1024^2 for one
// core): relative to the 2N-point-FFT row-column baseline, the N-point
// formulation (Alg. 3) is ~2.1x faster for DCT / ~1.3x for IDCT, and the
// single-pass 2-D N-point formulation (Alg. 4) ~5.0x / ~4.1x faster.
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "bench_util.h"
#include "common/rng.h"
#include "fft/dct2d.h"

namespace {

using namespace dreamplace;
using fft::Dct2dAlgorithm;

std::vector<float>& mapOfSize(int m) {
  static std::map<int, std::vector<float>> cache;
  auto& map = cache[m];
  if (map.empty()) {
    Rng rng(m);
    map.resize(static_cast<size_t>(m) * m);
    for (float& v : map) {
      v = static_cast<float>(rng.uniform(0, 1));
    }
  }
  return map;
}

void dct2dBench(benchmark::State& state, Dct2dAlgorithm algo, bool inverse) {
  const int m = static_cast<int>(state.range(0));
  auto& in = mapOfSize(m);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    if (inverse) {
      fft::idct2d(in.data(), out.data(), m, m, algo);
    } else {
      fft::dct2d(in.data(), out.data(), m, m, algo);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(m);
}

void registerAll() {
  struct Variant {
    const char* name;
    Dct2dAlgorithm algo;
  };
  const Variant variants[] = {
      {"2N", Dct2dAlgorithm::kRowCol2N},
      {"N", Dct2dAlgorithm::kRowColN},
      {"2D-N", Dct2dAlgorithm::kFft2dN},
  };
  for (const auto& v : variants) {
    for (bool inverse : {false, true}) {
      auto* bench = benchmark::RegisterBenchmark(
          (std::string(inverse ? "IDCT-" : "DCT-") + v.name).c_str(),
          [algo = v.algo, inverse](benchmark::State& s) {
            dct2dBench(s, algo, inverse);
          });
      bench->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Unit(
          benchmark::kMillisecond);
    }
  }
}

// Self-timed sweep for the machine-readable export: google-benchmark's
// JSON reporter would redirect the console tables, so the file keeps its
// own (smaller) measurement pass — best of `kIters` after one warm-up
// call, which is also what makes the fft/* counter snapshot deterministic.
void writeJsonReport(const std::string& path) {
  struct Variant {
    const char* name;
    Dct2dAlgorithm algo;
  };
  const Variant variants[] = {
      {"2N", Dct2dAlgorithm::kRowCol2N},
      {"N", Dct2dAlgorithm::kRowColN},
      {"2D-N", Dct2dAlgorithm::kFft2dN},
  };
  constexpr int kIters = 3;
  bench::BenchJsonWriter writer("fig11_dct");
  for (const auto& v : variants) {
    for (bool inverse : {false, true}) {
      for (int m : {128, 256, 512}) {
        auto& in = mapOfSize(m);
        std::vector<float> out(in.size());
        const auto run = [&] {
          if (inverse) {
            fft::idct2d(in.data(), out.data(), m, m, v.algo);
          } else {
            fft::dct2d(in.data(), out.data(), m, m, v.algo);
          }
          benchmark::DoNotOptimize(out.data());
        };
        run();  // warm-up: builds the thread-local plan for (m, algo)
        double best_ms = 0;
        for (int i = 0; i < kIters; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          run();
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          if (i == 0 || ms < best_ms) {
            best_ms = ms;
          }
        }
        writer.addResult(std::string(inverse ? "IDCT-" : "DCT-") + v.name,
                         m, best_ms);
      }
    }
  }
  writer.addCounterPrefix("fft/");
  if (writer.write(path)) {
    std::printf("bench json written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench json: cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::benchJsonPath(argc, argv, "BENCH_fig11_dct.json");
  bench::applyBenchThreads(argc, argv);
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    writeJsonReport(json_path);
  }
  return 0;
}
