// Fig. 8 reproduction: average GP runtime ratio vs number of CPU threads,
// normalized to the fast-kernel float64 configuration.
//
// Caveat (documented in EXPERIMENTS.md): this machine exposes a single
// hardware core, so thread counts > 1 measure scheduling overhead, not
// speedup — the paper's saturation-at-~20-threads shape cannot appear.
// The bench still sweeps thread counts so that on a multicore host the
// figure regenerates as intended.
#include "bench_util.h"
#include "common/parallel.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.005);
  const auto suite = ispd2005Suite(scale);
  std::printf("Fig. 8: GP runtime ratio vs thread count "
              "(scale %.3f, %d hardware threads)\n\n",
              scale, static_cast<int>(std::thread::hardware_concurrency()));

  // Reference: fast kernels, float64, default threads.
  double reference = 0;
  for (const SuiteEntry& entry : suite) {
    auto db = generateNetlist(entry.config);
    GlobalPlacer<double> placer(*db, dreamplaceFastGp());
    Timer timer;
    placer.run();
    reference += timer.elapsed();
  }
  std::printf("reference (fast kernels, float64, default threads): %.2fs "
              "total\n\n", reference);

  struct Config {
    const char* name;
    GlobalPlacerOptions gp;
  };
  const Config configs[] = {
      {"replace-mode", replaceModeGp()},
      {"dreamplace", dreamplaceCpuGp()},
  };

  std::printf("%-14s", "threads");
  for (const auto& config : configs) {
    std::printf(" %14s", config.name);
  }
  std::printf("   (ratio vs reference)\n");

  const int max_threads = std::max(
      4, static_cast<int>(std::thread::hardware_concurrency()));
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    ThreadPool::instance().setThreads(threads);
    std::printf("%-14d", threads);
    for (const auto& config : configs) {
      double total = 0;
      for (const SuiteEntry& entry : suite) {
        auto db = generateNetlist(entry.config);
        GlobalPlacer<double> placer(*db, config.gp);
        Timer timer;
        placer.run();
        total += timer.elapsed();
      }
      std::printf(" %14.2f", total / reference);
    }
    std::printf("\n");
  }
  ThreadPool::instance().setThreads(0);
  return 0;
}
