// Fig. 7 reproduction: GP runtime per design for every implementation and
// precision combination across the ISPD2005-like and industrial-like
// suites.
//
// Paper shape: per design, RePlAce-mode slowest, DREAMPlace CPU faster,
// the fast-kernel config fastest; float32 beats float64 by ~1.3-1.4x in
// each config; runtime grows roughly linearly with design size.
#include "bench_util.h"
#include "gen/netlist_generator.h"

int main(int argc, char** argv) {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  // Optional observability exports (--trace=, --telemetry-jsonl=, ...).
  TelemetrySession telemetry(argc, argv);
  const std::string json_path = benchJsonPath(argc, argv, "BENCH_fig7.json");
  BenchJsonWriter writer("fig7_gp_runtime");

  // GP-only sweep over many configs: use a smaller default scale so the
  // 48-run matrix stays tractable on one core.
  const double scale = benchScale(0.005);
  std::printf("Fig. 7: GP runtime (seconds) per design, config, precision "
              "(scale %.3f)\n\n", scale);

  struct Config {
    const char* name;
    GlobalPlacerOptions gp;
  };
  const Config configs[] = {
      {"replace", replaceModeGp()},
      {"dp-cpu", dreamplaceCpuGp()},
      {"dp-fast", dreamplaceFastGp()},
  };

  auto suite = ispd2005Suite(scale);
  {
    auto industrial = industrialSuite(scale);
    // design6 at fig-7 scale is still the largest run; keep it last.
    suite.insert(suite.end(), industrial.begin(), industrial.end());
  }

  std::printf("%-10s %8s |", "design", "#cells");
  for (const auto& config : configs) {
    std::printf(" %9s-f64 %9s-f32 |", config.name, config.name);
  }
  std::printf("\n");

  double sum_ratio_f32 = 0;
  int n_ratio = 0;
  for (const SuiteEntry& entry : suite) {
    std::printf("%-10s %8d |", entry.name.c_str(), entry.config.numCells);
    double fast64 = 0;
    for (const auto& config : configs) {
      double seconds[2] = {0, 0};
      int p = 0;
      for (Precision precision :
           {Precision::kFloat64, Precision::kFloat32}) {
        auto db = generateNetlist(entry.config);
        GlobalPlacerOptions gp = config.gp;
        telemetry.attach(
            gp, entry.name + "/" + config.name +
                    (precision == Precision::kFloat32 ? "/f32" : "/f64"));
        if (precision == Precision::kFloat32) {
          GlobalPlacer<float> placer(*db, gp);
          Timer timer;
          placer.run();
          seconds[p] = timer.elapsed();
        } else {
          GlobalPlacer<double> placer(*db, gp);
          Timer timer;
          placer.run();
          seconds[p] = timer.elapsed();
        }
        writer.addResult(
            entry.name + "/" + config.name +
                (precision == Precision::kFloat32 ? "/f32" : "/f64"),
            entry.config.numCells, seconds[p] * 1000.0);
        ++p;
      }
      std::printf(" %13.2f %13.2f |", seconds[0], seconds[1]);
      if (std::string(config.name) == "dp-fast") {
        fast64 = seconds[0];
        if (seconds[1] > 0) {
          sum_ratio_f32 += seconds[0] / seconds[1];
          ++n_ratio;
        }
      }
    }
    (void)fast64;
    std::printf("\n");
  }
  if (n_ratio > 0) {
    std::printf("\naverage float64/float32 speedup (fast config): %.2fx "
                "(paper: ~1.3-1.4x)\n",
                sum_ratio_f32 / n_ratio);
  }
  if (!json_path.empty()) {
    writer.addCounterPrefix("ops/");
    writer.addCounterPrefix("optimizer/");
    if (writer.write(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench json: cannot write %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
