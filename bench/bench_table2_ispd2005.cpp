// Table II reproduction: ISPD 2005 suite, float64.
//
// Paper columns: per design, {RePlAce 40 threads, DREAMPlace CPU,
// DREAMPlace V100} x {HPWL, GP, LG, DP, Total}. Here the three configs are
// the algorithmic stand-ins described in bench_util.h; designs are the
// scaled ISPD2005-like synthetic suite. Expected shape: identical HPWL
// within a fraction of a percent across configs, with GP runtime ordering
// RePlAce-mode > DREAMPlace CPU > DREAMPlace fast.
#include <vector>

#include "bench_util.h"
#include "gen/netlist_generator.h"

int main(int argc, char** argv) {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  // Optional observability exports (--trace=, --telemetry-jsonl=, ...).
  TelemetrySession telemetry(argc, argv);

  const double scale = benchScale(0.01);
  std::printf("Table II: ISPD 2005 suite (scale %.3f of paper sizes, "
              "float64)\n", scale);

  struct Config {
    const char* name;
    GlobalPlacerOptions gp;
  };
  const Config configs[] = {
      {"RePlAce-mode (reference)", replaceModeGp()},
      {"DREAMPlace (CPU kernels)", dreamplaceCpuGp()},
      {"DREAMPlace (fast kernels)", dreamplaceFastGp()},
  };

  std::vector<std::vector<FlowRow>> all_rows(3);
  for (int c = 0; c < 3; ++c) {
    printFlowHeader(configs[c].name);
    for (const SuiteEntry& entry : ispd2005Suite(scale)) {
      auto db = generateNetlist(entry.config);
      PlacerOptions options;
      options.precision = Precision::kFloat64;
      options.gp = configs[c].gp;
      telemetry.attach(options, entry.name + "/" + configs[c].name);
      FlowRow row;
      row.design = entry.name;
      row.cellsK = db->numMovable() / 1000.0;
      row.netsK = db->numNets() / 1000.0;
      row.result = placeDesign(*db, options);
      printFlowRow(row);
      all_rows[c].push_back(row);
    }
  }

  std::printf("\n=== ratios vs DREAMPlace (fast kernels) ===\n");
  printRatio(all_rows[0], all_rows[2], "RePlAce-mode");
  printRatio(all_rows[1], all_rows[2], "DREAMPlace CPU");
  printRatio(all_rows[2], all_rows[2], "DREAMPlace fast");
  return 0;
}
