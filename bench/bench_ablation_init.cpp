// Ablation: random-center vs spread initial placement (paper Sec. III).
//
// Paper claim: starting from a random center-plus-noise placement reaches
// the same quality (<0.04% HPWL difference at paper scale) as the
// conventional iterative initial placement, while eliminating the GP-IP
// phase (21.1% of GP runtime in Fig. 3).
#include "bench_util.h"
#include "common/timer.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  std::printf("Ablation: initial placement strategy (scale %.3f)\n\n",
              scale);
  std::printf("%-10s | %12s %9s %9s | %12s %9s %9s | %9s\n", "design",
              "rand HPWL", "GP(s)", "IP(s)", "spread HPWL", "GP(s)",
              "IP(s)", "dHPWL");

  double hpwl_ratio = 1.0;
  double ip_share_sum = 0.0;
  int n = 0;
  for (const SuiteEntry& entry : ispd2005Suite(scale)) {
    FlowResult results[2];
    double ip_seconds[2];
    int i = 0;
    for (InitialPlacement init :
         {InitialPlacement::kRandomCenter, InitialPlacement::kSpread}) {
      auto db = generateNetlist(entry.config);
      PlacerOptions options;
      options.gp = dreamplaceFastGp();
      options.gp.init = init;
      RunReport report;
      results[i] = placeWithReport(*db, options, report);
      ip_seconds[i] = timingTotal(report, "gp/init");
      ++i;
    }
    const double delta =
        100.0 * (results[0].hpwl - results[1].hpwl) / results[1].hpwl;
    std::printf("%-10s | %12.4e %9.2f %9.3f | %12.4e %9.2f %9.3f | %+8.2f%%\n",
                entry.name.c_str(), results[0].hpwl, results[0].gpSeconds,
                ip_seconds[0], results[1].hpwl, results[1].gpSeconds,
                ip_seconds[1], delta);
    hpwl_ratio *= results[0].hpwl / results[1].hpwl;
    ip_share_sum += ip_seconds[1] / results[1].gpSeconds;
    ++n;
  }
  std::printf("\ngeomean HPWL ratio (random/spread): %.4f "
              "(paper: ~1.000 +- 0.0004)\n",
              std::pow(hpwl_ratio, 1.0 / n));
  std::printf("average spread-IP share of GP time: %.1f%% "
              "(paper: 21.1%%)\n", 100.0 * ip_share_sum / n);
  return 0;
}
