// Fig. 9 reproduction: DREAMPlace runtime breakdown (fast config,
// float32) on bigblue4.
//
// Paper shape: (a) across the whole flow, DP dominates (~82%) while
// GP+LG shrink to a few percent; (b) within one GP forward/backward
// pass, density-related computation outweighs wirelength (73.4% vs
// 26.5%), and with the fast DCT the spectral solve is no longer the
// density bottleneck.
#include <filesystem>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/netlist_generator.h"
#include "io/bookshelf_writer.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  const SuiteEntry entry = findSuiteEntry("bigblue4", scale);
  std::printf("Fig. 9: DREAMPlace (fast, float32) breakdown on %s "
              "(%d cells)\n\n",
              entry.name.c_str(), entry.config.numCells);

  auto db = generateNetlist(entry.config);

  PlacerOptions options;
  options.precision = Precision::kFloat32;
  options.gp = dreamplaceFastGp();
  Timer total_timer;
  RunReport report;
  const FlowResult result = placeWithReport(*db, options, report);

  Timer io_timer;
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dp_fig9_io";
  writeBookshelf(*db, dir.string(), "bigblue4");
  const double io = io_timer.elapsed();
  fs::remove_all(dir);

  const double grand = total_timer.elapsed() + io;
  auto pct = [&](double v) { return 100.0 * v / grand; };
  std::printf("(a) flow breakdown\n");
  std::printf("%-22s %10s %8s\n", "phase", "seconds", "share");
  std::printf("%-22s %10.2f %7.1f%%\n", "Global placement",
              result.gpSeconds, pct(result.gpSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "Legalization", result.lgSeconds,
              pct(result.lgSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "Detailed placement",
              result.dpSeconds, pct(result.dpSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "IO", io, pct(io));

  const double wl = timingTotal(report, "gp/op/wirelength");
  const double density = timingTotal(report, "gp/op/density");
  const double scatter = timingTotal(report, "gp/op/density/scatter");
  const double poisson = timingTotal(report, "gp/op/density/poisson");
  const double gather = timingTotal(report, "gp/op/density/gather");
  const double pass = wl + density;
  std::printf("\n(b) one GP forward+backward pass (accumulated)\n");
  std::printf("%-26s %10.2f %7.1f%%\n", "wirelength fwd+bwd", wl,
              100.0 * wl / pass);
  std::printf("%-26s %10.2f %7.1f%%\n", "density fwd+bwd", density,
              100.0 * density / pass);
  std::printf("    %-22s %10.2f %7.1f%% of density\n", "density map",
              scatter, 100.0 * scatter / density);
  std::printf("    %-22s %10.2f %7.1f%% of density\n", "spectral solve",
              poisson, 100.0 * poisson / density);
  std::printf("    %-22s %10.2f %7.1f%% of density\n", "force gather",
              gather, 100.0 * gather / density);
  std::printf("\npaper shape check: density share of pass = %.1f%% "
              "(paper: 73.4%%), DP share of flow = %.1f%% (paper: ~82%%)\n",
              100.0 * density / pass, pct(result.dpSeconds));
  return 0;
}
