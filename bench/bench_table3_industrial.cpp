// Table III reproduction: industrial suite with fixed macros, float64,
// including the 10.5M-cell (scaled) design6 scalability stressor.
//
// As in the paper — where RePlAce crashed on design6 and its runtime was
// estimated from per-iteration cost — the RePlAce-mode config on design6
// is estimated from a bounded number of iterations rather than run to
// completion.
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  std::printf("Table III: industrial suite (scale %.3f, float64)\n", scale);

  struct Config {
    const char* name;
    GlobalPlacerOptions gp;
    bool estimate_largest;
  };
  const Config configs[] = {
      {"RePlAce-mode (reference)", replaceModeGp(), true},
      {"DREAMPlace (CPU kernels)", dreamplaceCpuGp(), false},
      {"DREAMPlace (fast kernels)", dreamplaceFastGp(), false},
  };

  const auto suite = industrialSuite(scale);
  std::vector<std::vector<FlowRow>> all_rows(3);
  for (int c = 0; c < 3; ++c) {
    printFlowHeader(configs[c].name);
    for (const SuiteEntry& entry : suite) {
      const bool largest = entry.name == "design6";
      auto db = generateNetlist(entry.config);
      FlowRow row;
      row.design = entry.name;
      row.cellsK = db->numMovable() / 1000.0;
      row.netsK = db->numNets() / 1000.0;
      if (largest && configs[c].estimate_largest) {
        // Paper-style estimate: measure initial placement + a fixed number
        // of kernel iterations, extrapolate to the DREAMPlace iteration
        // count of this design.
        GlobalPlacerOptions gp = configs[c].gp;
        gp.maxIterations = 30;
        gp.minIterations = 30;
        Timer timer;
        GlobalPlacer<double> placer(*db, gp);
        placer.run();
        const double per_iter = timer.elapsed() / 30.0;
        const int ref_iters = 1000;
        row.result.gpSeconds = per_iter * ref_iters;
        row.result.totalSeconds = row.result.gpSeconds;
        row.result.hpwl = 0.0;  // NA, like the paper
        std::printf("%-10s %8.0f %8.0f | %12s %8.0f %8s %8s %8.0f  "
                    "[estimated like the paper: RePlAce-mode run "
                    "truncated]\n",
                    row.design.c_str(), row.cellsK * 1000, row.netsK * 1000,
                    "NA", row.result.gpSeconds, "NA", "NA",
                    row.result.totalSeconds);
      } else {
        PlacerOptions options;
        options.precision = Precision::kFloat64;
        options.gp = configs[c].gp;
        row.result = placeDesign(*db, options);
        printFlowRow(row);
      }
      all_rows[c].push_back(row);
    }
  }

  std::printf("\n=== ratios vs DREAMPlace (fast kernels), design6 "
              "excluded from HPWL ===\n");
  // Drop design6 rows for the quality ratio (NA in RePlAce-mode).
  auto strip = [](std::vector<FlowRow> rows) {
    rows.pop_back();
    return rows;
  };
  printRatio(strip(all_rows[0]), strip(all_rows[2]), "RePlAce-mode");
  printRatio(strip(all_rows[1]), strip(all_rows[2]), "DREAMPlace CPU");

  // Scalability: GP seconds per cell across the suite (fast config).
  std::printf("\n=== linear-scalability check (fast config) ===\n");
  std::printf("%-10s %10s %12s %14s\n", "design", "#cells", "GP(s)",
              "GP us/cell");
  for (const FlowRow& row : all_rows[2]) {
    std::printf("%-10s %10.0f %12.2f %14.2f\n", row.design.c_str(),
                row.cellsK * 1000, row.result.gpSeconds,
                1e6 * row.result.gpSeconds / (row.cellsK * 1000));
  }
  return 0;
}
