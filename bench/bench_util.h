// Shared helpers for the paper-reproduction benchmarks.
//
// The paper compares three implementations: multithreaded RePlAce, the
// DREAMPlace CPU backend, and the DREAMPlace GPU backend. On this
// single-core machine the comparison maps onto three configurations of
// the same placer that differ exactly in the algorithmic choices the
// paper credits for the speedup (see DESIGN.md Sec. 1):
//
//   RePlAce-mode       : bound-to-bound-style spread initial placement
//                        (the costly GP-IP phase of Fig. 3), net-by-net
//                        wirelength with stored intermediates, naive
//                        density scatter, row-column 2N-point-FFT DCT,
//                        original eq. (18) mu schedule.
//   DREAMPlace (CPU)   : random-center init, merged wirelength kernel
//                        (Alg. 2), sorted density scatter, row-column
//                        N-point-FFT DCT (Alg. 3).
//   DREAMPlace (fast)  : as CPU plus the single-pass 2-D FFT DCT
//                        (Alg. 4) — the closest CPU analog of the paper's
//                        GPU kernel set (the GPU-only 2x2 sub-rectangle
//                        trick is ablated separately in Fig. 6).
//
// Absolute speedups are hardware-bound (the paper's 40x needs a V100);
// the *ordering* and the per-kernel ratios (Figs. 10-12) are what these
// benches reproduce.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/suites.h"
#include "gp/global_placer.h"
#include "place/placer.h"

namespace dreamplace::bench {

/// Suite scale factor; override with DREAMPLACE_BENCH_SCALE.
inline double benchScale(double fallback = 0.01) {
  if (const char* env = std::getenv("DREAMPLACE_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

inline GlobalPlacerOptions replaceModeGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kSpread;
  options.wlKernel = WirelengthKernel::kNetByNet;
  options.densityKernel = DensityKernel::kNaive;
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kRowCol2N;
  options.tcadMuVariant = false;
  return options;
}

inline GlobalPlacerOptions dreamplaceCpuGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kRandomCenter;
  options.wlKernel = WirelengthKernel::kMerged;
  options.densityKernel = DensityKernel::kSorted;
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kRowColN;
  return options;
}

inline GlobalPlacerOptions dreamplaceFastGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kRandomCenter;
  options.wlKernel = WirelengthKernel::kMerged;
  options.densityKernel = DensityKernel::kSorted;
  // The k x k sub-rectangle split is a GPU warp-balancing trick; the
  // paper's CPU backend uses plain dynamic scheduling (Sec. III-B1), so
  // the fast CPU config keeps subdivision at 1 (Fig. 6 ablates it).
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kFft2dN;
  return options;
}

struct FlowRow {
  std::string design;
  double cellsK = 0;
  double netsK = 0;
  FlowResult result;
};

inline void printFlowHeader(const char* config) {
  std::printf("\n--- %s ---\n", config);
  std::printf("%-10s %8s %8s | %12s %8s %8s %8s %8s\n", "design", "#cells",
              "#nets", "HPWL", "GP(s)", "LG(s)", "DP(s)", "Total(s)");
}

inline void printFlowRow(const FlowRow& row) {
  std::printf("%-10s %8.0f %8.0f | %12.4e %8.2f %8.2f %8.2f %8.2f%s\n",
              row.design.c_str(), row.cellsK * 1000, row.netsK * 1000,
              row.result.hpwl, row.result.gpSeconds, row.result.lgSeconds,
              row.result.dpSeconds, row.result.totalSeconds,
              row.result.legal ? "" : "  [NOT LEGAL]");
}

/// Geometric-mean ratios of HPWL and GP time of `rows` vs `baseline`.
inline void printRatio(const std::vector<FlowRow>& rows,
                       const std::vector<FlowRow>& baseline,
                       const char* label) {
  double hpwl_ratio = 1.0;
  double gp_ratio = 1.0;
  double total_ratio = 1.0;
  int n = 0;
  for (size_t i = 0; i < rows.size() && i < baseline.size(); ++i) {
    if (rows[i].result.hpwl <= 0 || baseline[i].result.hpwl <= 0) {
      continue;
    }
    hpwl_ratio *= rows[i].result.hpwl / baseline[i].result.hpwl;
    gp_ratio *= rows[i].result.gpSeconds / baseline[i].result.gpSeconds;
    total_ratio *=
        rows[i].result.totalSeconds / baseline[i].result.totalSeconds;
    ++n;
  }
  if (n == 0) {
    return;
  }
  const double inv = 1.0 / n;
  std::printf("%-24s HPWL ratio %.3f   GP time ratio %.2fx   total %.2fx\n",
              label, std::pow(hpwl_ratio, inv), std::pow(gp_ratio, inv),
              std::pow(total_ratio, inv));
}

}  // namespace dreamplace::bench
