// Shared helpers for the paper-reproduction benchmarks.
//
// The paper compares three implementations: multithreaded RePlAce, the
// DREAMPlace CPU backend, and the DREAMPlace GPU backend. On this
// single-core machine the comparison maps onto three configurations of
// the same placer that differ exactly in the algorithmic choices the
// paper credits for the speedup (see DESIGN.md Sec. 1):
//
//   RePlAce-mode       : bound-to-bound-style spread initial placement
//                        (the costly GP-IP phase of Fig. 3), net-by-net
//                        wirelength with stored intermediates, naive
//                        density scatter, row-column 2N-point-FFT DCT,
//                        original eq. (18) mu schedule.
//   DREAMPlace (CPU)   : random-center init, merged wirelength kernel
//                        (Alg. 2), sorted density scatter, row-column
//                        N-point-FFT DCT (Alg. 3).
//   DREAMPlace (fast)  : as CPU plus the single-pass 2-D FFT DCT
//                        (Alg. 4) — the closest CPU analog of the paper's
//                        GPU kernel set (the GPU-only 2x2 sub-rectangle
//                        trick is ablated separately in Fig. 6).
//
// Absolute speedups are hardware-bound (the paper's 40x needs a V100);
// the *ordering* and the per-kernel ratios (Figs. 10-12) are what these
// benches reproduce.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/flow_context.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "gen/suites.h"
#include "gp/global_placer.h"
#include "gp/telemetry.h"
#include "place/placer.h"
#include "place/report.h"

namespace dreamplace::bench {

// ---------------------------------------------------------------------------
// Observability exports (docs/OBSERVABILITY.md). All off by default:
//   --trace=<file>            Chrome trace JSON (chrome://tracing)
//   --telemetry-jsonl=<file>  per-iteration GP records, one JSON per line
//   --telemetry-csv=<file>    per-run GP summary rows
//   --report=<file>           end-of-flow run report JSON (place/report.h)
//   --report-text=<file>      human-readable rendering of the run report
//   --threads=N               parallel-runtime worker threads (0 = auto)
//   --log-level=LEVEL         debug|info|warn|error|silent
// Environment fallbacks: DREAMPLACE_TRACE, DREAMPLACE_TELEMETRY_JSONL,
// DREAMPLACE_TELEMETRY_CSV, DREAMPLACE_REPORT, DREAMPLACE_REPORT_TEXT,
// DREAMPLACE_THREADS, DREAMPLACE_LOG_LEVEL, DREAMPLACE_LOG_JSON.
// ---------------------------------------------------------------------------

/// The shared bench command line, parsed once. flowOptions() turns it
/// into a flow-scoped PlacerOptions, so every bench starts from the same
/// configuration surface instead of re-implementing flag handling.
struct BenchFlags {
  std::string traceFile;
  std::string jsonlFile;
  std::string csvFile;
  std::string reportFile;
  std::string reportTextFile;
  int threads = 0;  ///< 0 = auto (DREAMPLACE_THREADS / hw concurrency).

  /// Flow options with the parsed flags applied. Telemetry *file* exports
  /// stay owned by the TelemetrySession (one file across all flows of a
  /// sweep); attach() wires them per flow.
  PlacerOptions flowOptions() const {
    PlacerOptions options;
    options.threads = threads;
    return options;
  }
};

inline BenchFlags parseBenchFlags(int argc, char** argv) {
  BenchFlags args;
  initLogLevelFromEnv();
  initLogJsonFromEnv();
  const auto fromEnv = [](const char* name) {
    const char* v = std::getenv(name);
    return v ? std::string(v) : std::string();
  };
  args.traceFile = fromEnv("DREAMPLACE_TRACE");
  args.jsonlFile = fromEnv("DREAMPLACE_TELEMETRY_JSONL");
  args.csvFile = fromEnv("DREAMPLACE_TELEMETRY_CSV");
  args.reportFile = fromEnv("DREAMPLACE_REPORT");
  args.reportTextFile = fromEnv("DREAMPLACE_REPORT_TEXT");
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto match = [arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = match("--trace=")) {
      args.traceFile = v;
    } else if (const char* v = match("--telemetry-jsonl=")) {
      args.jsonlFile = v;
    } else if (const char* v = match("--telemetry-csv=")) {
      args.csvFile = v;
    } else if (const char* v = match("--report-text=")) {
      args.reportTextFile = v;
    } else if (const char* v = match("--report=")) {
      args.reportFile = v;
    } else if (const char* v = match("--threads=")) {
      args.threads = std::atoi(v);
    } else if (const char* v = match("--log-level=")) {
      LogLevel level = LogLevel::kInfo;
      if (!parseLogLevel(v, level)) {
        std::fprintf(stderr, "error: unknown log level '%s'\n", v);
        std::exit(2);
      }
      setLogLevel(level);
    }
  }
  return args;
}

/// RAII bench telemetry session: enables trace recording and opens the
/// requested sinks for the program's lifetime; writes the trace file and
/// flushes on destruction. sink() is null when nothing was requested, so
/// an unconfigured bench pays nothing.
class TelemetrySession {
 public:
  explicit TelemetrySession(const BenchFlags& args)
      : trace_file_(args.traceFile),
        report_file_(args.reportFile),
        report_text_file_(args.reportTextFile) {
    // Fail fast with a clean message on an unwritable export path: the
    // user asked for a file, and discovering it is missing only after a
    // long sweep would waste the whole run.
    try {
      if (!args.jsonlFile.empty()) {
        jsonl_ = std::make_unique<JsonlTelemetrySink>(args.jsonlFile);
        mux_.addSink(jsonl_.get());
      }
      if (!args.csvFile.empty()) {
        csv_ = std::make_unique<CsvTelemetrySink>(args.csvFile);
        mux_.addSink(csv_.get());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
    if (!trace_file_.empty()) {
      TraceRecorder::instance().setEnabled(true);
      mux_.addSink(&trace_sink_);
    }
    // --threads=N beats DREAMPLACE_THREADS (the pool itself reads the env
    // var when the request is 0/auto, so 0 needs no action here).
    if (args.threads > 0) {
      ThreadPool::instance().setThreads(args.threads);
    }
  }

  TelemetrySession(int argc, char** argv)
      : TelemetrySession(parseBenchFlags(argc, argv)) {}

  ~TelemetrySession() {
    if (!trace_file_.empty()) {
      TraceRecorder& trace = TraceRecorder::instance();
      trace.setEnabled(false);
      if (trace.writeJson(trace_file_)) {
        std::printf("trace written to %s\n", trace_file_.c_str());
      } else {
        std::printf("trace: cannot write %s\n", trace_file_.c_str());
      }
    }
  }

  TelemetrySink* sink() { return mux_.empty() ? nullptr : &mux_; }

  /// Installs the session's sink into GP options under `label`.
  void attach(GlobalPlacerOptions& gp, const std::string& label) {
    gp.telemetry = sink();
    gp.telemetryLabel = label;
  }

  /// Installs the session's exports into flow options under `label`.
  /// (File sinks are owned here, so only the extra sink is forwarded; the
  /// run report is assembled by placeDesign itself, so its paths are.)
  void attach(PlacerOptions& options, const std::string& label) {
    options.telemetry = sink();
    options.telemetryLabel = label;
    options.reportJson = report_file_;
    options.reportText = report_text_file_;
  }

 private:
  TelemetryMux mux_;
  std::unique_ptr<JsonlTelemetrySink> jsonl_;
  std::unique_ptr<CsvTelemetrySink> csv_;
  TraceTelemetrySink trace_sink_;
  std::string trace_file_;
  std::string report_file_;
  std::string report_text_file_;
};

/// Applies a --threads=N flag for bench binaries that do not build a
/// TelemetrySession (the google-benchmark ones). Call before
/// benchmark::Initialize. Without the flag the pool keeps its auto
/// resolution (DREAMPLACE_THREADS / hardware concurrency).
inline void applyBenchThreads(int argc, char** argv) {
  const BenchFlags flags = parseBenchFlags(argc, argv);
  if (flags.threads > 0) {
    ThreadPool::instance().setThreads(flags.threads);
  }
}

/// Runs one flow and hands back its RunReport alongside the result.
/// Benches that need per-flow timing/counter breakdowns read them from
/// the report — flows run under private FlowContexts now, so post-flow
/// reads of the global registries see nothing (and sweeps no longer need
/// to clear() registries between runs).
inline FlowResult placeWithReport(Database& db, const PlacerOptions& options,
                                  RunReport& report) {
  FlowContext::Config config;
  config.privateTrace = !options.traceFile.empty();
  FlowContext context(config);
  return placeDesign(db, options, context, &report);
}

/// Inclusive seconds of one timing key in a run report (0 when absent).
inline double timingTotal(const RunReport& report, const std::string& key) {
  const auto it = report.timing.find(key);
  return it == report.timing.end() ? 0.0 : it->second.seconds;
}

/// Output path for the machine-readable result file of a bench binary.
/// Precedence: --json=<file> > DREAMPLACE_BENCH_JSON > `fallback`; an
/// empty value disables the export. Parse before benchmark::Initialize so
/// the flag never reaches google-benchmark's own parser.
inline std::string benchJsonPath(int argc, char** argv,
                                 const std::string& fallback) {
  std::string path = fallback;
  if (const char* env = std::getenv("DREAMPLACE_BENCH_JSON")) {
    path = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    }
  }
  return path;
}

/// Machine-readable benchmark export: collects (name, n, ms) rows plus a
/// counter-registry snapshot and writes them as one JSON document, so CI
/// and regression tooling can diff runs without scraping console tables.
///
///   {"bench":"fig11_dct","schema":1,"threads":4,
///    "results":[{"name":"DCT-2D-N","n":512,"ms":5.02}, ...],
///    "counters":{"fft/plan/create":14, ...}}
///
/// `threads` is the parallel-runtime thread count in effect at write
/// time, so result files from thread sweeps stay self-describing.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  void addResult(const std::string& name, std::int64_t n, double ms) {
    results_.push_back({name, n, ms});
  }

  /// Records one explicit counter row. Flows run under private
  /// FlowContexts, so their counters never reach the global registry —
  /// benches copy the keys they need out of the flow's RunReport.
  void addCounter(const std::string& key, CounterRegistry::Value value) {
    counters_.push_back({key, value});
  }

  /// Records every counter whose key starts with `prefix` (call multiple
  /// times to merge several subsystems into the snapshot).
  void addCounterPrefix(const std::string& prefix) {
    for (const auto& [key, value] : CounterRegistry::instance().snapshot()) {
      if (key.compare(0, prefix.size(), prefix) == 0) {
        counters_.push_back({key, value});
      }
    }
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"schema\":1,\"threads\":%d,"
                 "\"results\":[",
                 bench_.c_str(), ThreadPool::instance().threads());
    for (size_t i = 0; i < results_.size(); ++i) {
      const auto& r = results_[i];
      std::fprintf(f, "%s{\"name\":\"%s\",\"n\":%lld,\"ms\":%.6g}",
                   i == 0 ? "" : ",", r.name.c_str(),
                   static_cast<long long>(r.n), r.ms);
    }
    std::fprintf(f, "],\"counters\":{");
    for (size_t i = 0; i < counters_.size(); ++i) {
      std::fprintf(f, "%s\"%s\":%lld", i == 0 ? "" : ",",
                   counters_[i].first.c_str(),
                   static_cast<long long>(counters_[i].second));
    }
    std::fprintf(f, "}}\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Row {
    std::string name;
    std::int64_t n;
    double ms;
  };
  std::string bench_;
  std::vector<Row> results_;
  std::vector<std::pair<std::string, CounterRegistry::Value>> counters_;
};

/// Suite scale factor; override with DREAMPLACE_BENCH_SCALE.
inline double benchScale(double fallback = 0.01) {
  if (const char* env = std::getenv("DREAMPLACE_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

inline GlobalPlacerOptions replaceModeGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kSpread;
  options.wlKernel = WirelengthKernel::kNetByNet;
  options.densityKernel = DensityKernel::kNaive;
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kRowCol2N;
  options.tcadMuVariant = false;
  return options;
}

inline GlobalPlacerOptions dreamplaceCpuGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kRandomCenter;
  options.wlKernel = WirelengthKernel::kMerged;
  options.densityKernel = DensityKernel::kSorted;
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kRowColN;
  return options;
}

inline GlobalPlacerOptions dreamplaceFastGp() {
  GlobalPlacerOptions options;
  options.init = InitialPlacement::kRandomCenter;
  options.wlKernel = WirelengthKernel::kMerged;
  options.densityKernel = DensityKernel::kSorted;
  // The k x k sub-rectangle split is a GPU warp-balancing trick; the
  // paper's CPU backend uses plain dynamic scheduling (Sec. III-B1), so
  // the fast CPU config keeps subdivision at 1 (Fig. 6 ablates it).
  options.densitySubdivision = 1;
  options.dct = fft::Dct2dAlgorithm::kFft2dN;
  return options;
}

struct FlowRow {
  std::string design;
  double cellsK = 0;
  double netsK = 0;
  FlowResult result;
};

inline void printFlowHeader(const char* config) {
  std::printf("\n--- %s ---\n", config);
  std::printf("%-10s %8s %8s | %12s %8s %8s %8s %8s\n", "design", "#cells",
              "#nets", "HPWL", "GP(s)", "LG(s)", "DP(s)", "Total(s)");
}

inline void printFlowRow(const FlowRow& row) {
  std::printf("%-10s %8.0f %8.0f | %12.4e %8.2f %8.2f %8.2f %8.2f%s\n",
              row.design.c_str(), row.cellsK * 1000, row.netsK * 1000,
              row.result.hpwl, row.result.gpSeconds, row.result.lgSeconds,
              row.result.dpSeconds, row.result.totalSeconds,
              row.result.legal ? "" : "  [NOT LEGAL]");
}

/// Geometric-mean ratios of HPWL and GP time of `rows` vs `baseline`.
inline void printRatio(const std::vector<FlowRow>& rows,
                       const std::vector<FlowRow>& baseline,
                       const char* label) {
  double hpwl_ratio = 1.0;
  double gp_ratio = 1.0;
  double total_ratio = 1.0;
  int n = 0;
  for (size_t i = 0; i < rows.size() && i < baseline.size(); ++i) {
    if (rows[i].result.hpwl <= 0 || baseline[i].result.hpwl <= 0) {
      continue;
    }
    hpwl_ratio *= rows[i].result.hpwl / baseline[i].result.hpwl;
    gp_ratio *= rows[i].result.gpSeconds / baseline[i].result.gpSeconds;
    total_ratio *=
        rows[i].result.totalSeconds / baseline[i].result.totalSeconds;
    ++n;
  }
  if (n == 0) {
    return;
  }
  const double inv = 1.0 / n;
  std::printf("%-24s HPWL ratio %.3f   GP time ratio %.2fx   total %.2fx\n",
              label, std::pow(hpwl_ratio, inv), std::pow(gp_ratio, inv),
              std::pow(total_ratio, inv));
}

}  // namespace dreamplace::bench
