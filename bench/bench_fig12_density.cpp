// Fig. 12 reproduction: full density forward+backward, float32 —
// (a) DAC'19 baseline kernels (naive scatter, 1x1, row-column 2N DCT) vs
// the TCAD kernels (sorted scatter, 2x2, single-pass 2-D DCT);
// (b) 1 thread vs all hardware threads for the TCAD config.
//
// Paper shape: TCAD kernels 1.5-2.1x faster than the DAC version; CPU
// threading gives ~3.1x at 40 threads (on this 1-core machine the thread
// sweep only measures overhead; see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "gen/netlist_generator.h"
#include "ops/density_op.h"

namespace {

using namespace dreamplace;
using namespace dreamplace::bench;

struct Setup {
  std::unique_ptr<Database> db;
  std::vector<float> params;
  std::vector<float> grad;
  std::vector<float> nodeW, nodeH;
  DensityGrid<float> grid;

  explicit Setup(const char* design) {
    const SuiteEntry entry = findSuiteEntry(design, benchScale(0.01));
    db = generateNetlist(entry.config);
    grid = makeGrid<float>(db->dieArea(), db->numMovable());
    std::vector<float> fw, fh;
    computeFillers<float>(*db, 1.0, fw, fh);
    DensityOp<float>::makeNodeSizes(*db, fw, fh, nodeW, nodeH);
    const Index n = static_cast<Index>(nodeW.size());
    params.resize(2 * static_cast<size_t>(n));
    grad.resize(params.size());
    Rng rng(11);
    const auto& die = db->dieArea();
    for (Index i = 0; i < n; ++i) {
      params[i] = static_cast<float>(rng.uniform(die.xl, die.xh));
      params[i + n] = static_cast<float>(rng.uniform(die.yl, die.yh));
    }
  }
};

Setup& setupFor(const std::string& design) {
  static std::map<std::string, std::unique_ptr<Setup>> cache;
  auto& slot = cache[design];
  if (!slot) {
    slot = std::make_unique<Setup>(design.c_str());
  }
  return *slot;
}

void densityBench(benchmark::State& state, const std::string& design,
                  bool tcad, int threads) {
  Setup& setup = setupFor(design);
  DensityOp<float>::Options options;
  if (tcad) {
    options.map.kernel = DensityKernel::kSorted;
    options.map.subdivision = 1;  // CPU backend: no sub-rect splitting
    options.dct = fft::Dct2dAlgorithm::kFft2dN;
  } else {
    options.map.kernel = DensityKernel::kNaive;
    options.map.subdivision = 1;
    options.dct = fft::Dct2dAlgorithm::kRowCol2N;
  }
  DensityOp<float> op(*setup.db, setup.grid, setup.nodeW, setup.nodeH,
                      options);
  const int prev = ThreadPool::instance().threads();
  if (threads > 0) {
    ThreadPool::instance().setThreads(threads);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.evaluate(
        std::span<const float>(setup.params), std::span<float>(setup.grad)));
  }
  ThreadPool::instance().setThreads(prev);
}

void registerAll() {
  const int hw = ThreadPool::instance().threads();
  for (const char* design : {"adaptec1", "bigblue4"}) {
    benchmark::RegisterBenchmark(
        (std::string("density/") + design + "/dac_baseline").c_str(),
        [design](benchmark::State& s) { densityBench(s, design, false, 0); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("density/") + design + "/tcad").c_str(),
        [design](benchmark::State& s) { densityBench(s, design, true, 0); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("density/") + design + "/tcad_1thread").c_str(),
        [design](benchmark::State& s) { densityBench(s, design, true, 1); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("density/") + design + "/tcad_" + std::to_string(hw) +
            "threads").c_str(),
        [design, hw](benchmark::State& s) {
          densityBench(s, design, true, hw);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

// Self-timed sweep for the machine-readable export (same pattern as
// bench_fig11_dct): best of `kIters` evaluate() calls after one warm-up,
// which also makes the density/fft counter snapshot deterministic.
void writeJsonReport(const std::string& path) {
  constexpr int kIters = 3;
  BenchJsonWriter writer("fig12_density");
  for (const char* design : {"adaptec1", "bigblue4"}) {
    Setup& setup = setupFor(design);
    for (bool tcad : {false, true}) {
      DensityOp<float>::Options options;
      if (tcad) {
        options.map.kernel = DensityKernel::kSorted;
        options.map.subdivision = 1;
        options.dct = fft::Dct2dAlgorithm::kFft2dN;
      } else {
        options.map.kernel = DensityKernel::kNaive;
        options.map.subdivision = 1;
        options.dct = fft::Dct2dAlgorithm::kRowCol2N;
      }
      DensityOp<float> op(*setup.db, setup.grid, setup.nodeW, setup.nodeH,
                          options);
      const auto run = [&] {
        benchmark::DoNotOptimize(
            op.evaluate(std::span<const float>(setup.params),
                        std::span<float>(setup.grad)));
      };
      run();  // warm-up: first solve allocates the solution buffers
      double best_ms = 0;
      for (int i = 0; i < kIters; ++i) {
        Timer timer;
        run();
        const double ms = timer.elapsed() * 1000.0;
        if (i == 0 || ms < best_ms) {
          best_ms = ms;
        }
      }
      writer.addResult(std::string("density/") + design + "/" +
                           (tcad ? "tcad" : "dac_baseline"),
                       op.numNodes(), best_ms);
    }
  }
  writer.addCounterPrefix("ops/density/");
  writer.addCounterPrefix("ops/electrostatics/");
  writer.addCounterPrefix("fft/");
  if (writer.write(path)) {
    std::printf("bench json written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench json: cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchJsonPath(argc, argv, "BENCH_fig12.json");
  applyBenchThreads(argc, argv);
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    writeJsonReport(json_path);
  }
  return 0;
}
