// Fig. 3 reproduction: RePlAce runtime breakdown on bigblue4.
//
// Paper shape: GP (initial placement + nonlinear optimization) takes
// ~90% of the total runtime, with GP-IP alone ~21-30%; LG and DP take the
// small remainder (DP here is our own, not NTUplace3). The RePlAce-mode
// config uses the iterative spread initial placement, which is the GP-IP
// phase being measured.
#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "dp/detailed_placer.h"
#include "gen/netlist_generator.h"
#include "io/bookshelf_writer.h"
#include "lg/abacus_legalizer.h"

#include <filesystem>

int main(int argc, char** argv) {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const BenchFlags flags = parseBenchFlags(argc, argv);
  TelemetrySession session(flags);

  const double scale = benchScale(0.01);
  const SuiteEntry entry = findSuiteEntry("bigblue4", scale);
  std::printf("Fig. 3: RePlAce-mode runtime breakdown on %s "
              "(%d cells, scale %.3f)\n\n",
              entry.name.c_str(), entry.config.numCells, scale);

  auto db = generateNetlist(entry.config);

  PlacerOptions options = flags.flowOptions();
  options.gp = replaceModeGp();
  session.attach(options, entry.name);
  Timer total_timer;
  RunReport report;
  const FlowResult result = placeWithReport(*db, options, report);

  // IO phase: benchmark write + read, as the tables' IO column does.
  Timer io_timer;
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dp_fig3_io";
  writeBookshelf(*db, dir.string(), "bigblue4");
  const double io = io_timer.elapsed();
  fs::remove_all(dir);

  const double gp_ip = timingTotal(report, "gp/init");
  const double gp_total = result.gpSeconds;
  const double gp_nl = gp_total - gp_ip;
  const double grand = total_timer.elapsed() + io;

  auto pct = [&](double v) { return 100.0 * v / grand; };
  std::printf("%-22s %10s %8s\n", "phase", "seconds", "share");
  std::printf("%-22s %10.2f %7.1f%%\n", "GP-IP (initial place)", gp_ip,
              pct(gp_ip));
  std::printf("%-22s %10.2f %7.1f%%\n", "GP-Nonlinear", gp_nl, pct(gp_nl));
  std::printf("%-22s %10.2f %7.1f%%\n", "Legalization", result.lgSeconds,
              pct(result.lgSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "Detailed placement",
              result.dpSeconds, pct(result.dpSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "IO", io, pct(io));
  std::printf("\npaper shape check: GP total share = %.1f%% "
              "(paper: ~90%%), GP-IP share of GP = %.1f%% "
              "(paper: 25-30%%)\n",
              pct(gp_total), 100.0 * gp_ip / gp_total);

  // Back-end thread scaling on the same workload: LG+DP timed at 1 and 4
  // threads over identical jittered starts (rebuilt per run). The
  // parallel back-end is bit-identical across thread counts, so both
  // runs perform the same moves and the ratio is pure runtime.
  auto backendRun = [&](int threads, double& out_hpwl) {
    auto bdb = generateNetlist(entry.config);
    Rng rng(2026);
    const Coord h = bdb->rowHeight();
    for (Index i = 0; i < bdb->numMovable(); ++i) {
      bdb->setCellPosition(i, bdb->cellX(i) + rng.uniform(-5 * h, 5 * h),
                           bdb->cellY(i) + rng.uniform(-5 * h, 5 * h));
    }
    ThreadPool::instance().setThreads(threads);
    Timer t;
    AbacusLegalizer().run(*bdb);
    DetailedPlacer().run(*bdb);
    const double seconds = t.elapsed();
    out_hpwl = hpwl(*bdb);
    return seconds;
  };
  double hpwl_t1 = 0.0, hpwl_t4 = 0.0;
  const double lg_dp_t1 = backendRun(1, hpwl_t1);
  const double lg_dp_t4 = backendRun(4, hpwl_t4);
  ThreadPool::instance().setThreads(flags.threads > 0 ? flags.threads : 0);
  std::printf("\nback-end scaling (LG+DP, jittered start): 1 thread %.3fs, "
              "4 threads %.3fs (%.2fx)%s\n",
              lg_dp_t1, lg_dp_t4,
              lg_dp_t4 > 0 ? lg_dp_t1 / lg_dp_t4 : 0.0,
              hpwl_t1 == hpwl_t4 ? "" : "  [HPWL MISMATCH]");

  const std::string json_path = benchJsonPath(argc, argv, "BENCH_fig3.json");
  if (!json_path.empty()) {
    BenchJsonWriter writer("fig3_breakdown");
    const auto n = static_cast<std::int64_t>(entry.config.numCells);
    writer.addResult("gp_ip", n, gp_ip * 1000);
    writer.addResult("gp_nl", n, gp_nl * 1000);
    writer.addResult("gp", n, gp_total * 1000);
    writer.addResult("lg", n, result.lgSeconds * 1000);
    writer.addResult("dp", n, result.dpSeconds * 1000);
    writer.addResult("io", n, io * 1000);
    writer.addResult("total", n, grand * 1000);
    writer.addResult("lg_dp_t1", n, lg_dp_t1 * 1000);
    writer.addResult("lg_dp_t4", n, lg_dp_t4 * 1000);
    for (const auto& [key, value] : report.counters) {
      if (key.compare(0, 3, "lg/") == 0 || key.compare(0, 3, "dp/") == 0) {
        writer.addCounter(key, value);
      }
    }
    if (writer.write(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::printf("bench json: cannot write %s\n", json_path.c_str());
    }
  }
  return 0;
}
