// Fig. 3 reproduction: RePlAce runtime breakdown on bigblue4.
//
// Paper shape: GP (initial placement + nonlinear optimization) takes
// ~90% of the total runtime, with GP-IP alone ~21-30%; LG and DP take the
// small remainder (DP here is our own, not NTUplace3). The RePlAce-mode
// config uses the iterative spread initial placement, which is the GP-IP
// phase being measured.
#include "bench_util.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "io/bookshelf_writer.h"

#include <filesystem>

int main(int argc, char** argv) {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const BenchFlags flags = parseBenchFlags(argc, argv);
  TelemetrySession session(flags);

  const double scale = benchScale(0.01);
  const SuiteEntry entry = findSuiteEntry("bigblue4", scale);
  std::printf("Fig. 3: RePlAce-mode runtime breakdown on %s "
              "(%d cells, scale %.3f)\n\n",
              entry.name.c_str(), entry.config.numCells, scale);

  auto db = generateNetlist(entry.config);

  PlacerOptions options = flags.flowOptions();
  options.gp = replaceModeGp();
  session.attach(options, entry.name);
  Timer total_timer;
  RunReport report;
  const FlowResult result = placeWithReport(*db, options, report);

  // IO phase: benchmark write + read, as the tables' IO column does.
  Timer io_timer;
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dp_fig3_io";
  writeBookshelf(*db, dir.string(), "bigblue4");
  const double io = io_timer.elapsed();
  fs::remove_all(dir);

  const double gp_ip = timingTotal(report, "gp/init");
  const double gp_total = result.gpSeconds;
  const double gp_nl = gp_total - gp_ip;
  const double grand = total_timer.elapsed() + io;

  auto pct = [&](double v) { return 100.0 * v / grand; };
  std::printf("%-22s %10s %8s\n", "phase", "seconds", "share");
  std::printf("%-22s %10.2f %7.1f%%\n", "GP-IP (initial place)", gp_ip,
              pct(gp_ip));
  std::printf("%-22s %10.2f %7.1f%%\n", "GP-Nonlinear", gp_nl, pct(gp_nl));
  std::printf("%-22s %10.2f %7.1f%%\n", "Legalization", result.lgSeconds,
              pct(result.lgSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "Detailed placement",
              result.dpSeconds, pct(result.dpSeconds));
  std::printf("%-22s %10.2f %7.1f%%\n", "IO", io, pct(io));
  std::printf("\npaper shape check: GP total share = %.1f%% "
              "(paper: ~90%%), GP-IP share of GP = %.1f%% "
              "(paper: 25-30%%)\n",
              pct(gp_total), 100.0 * gp_ip / gp_total);
  return 0;
}
