// Ablation: density-weight schedule variant (paper Sec. III-C).
//
// The TCAD extension dampens mu_max by max(0.9999^k, 0.98) when HPWL
// decreased, which the paper credits with "relatively stable convergence".
// This bench compares iterations-to-target and final quality with the
// original eq. (18) schedule.
#include "bench_util.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  std::printf("Ablation: lambda (density weight) schedule (scale %.3f)\n\n",
              scale);
  std::printf("%-10s | %12s %7s | %12s %7s | %9s\n", "design",
              "tcad HPWL", "iters", "orig HPWL", "iters", "dHPWL");

  double ratio = 1.0;
  long iter_tcad = 0, iter_orig = 0;
  int n = 0;
  for (const SuiteEntry& entry : ispd2005Suite(scale)) {
    FlowResult results[2];
    int i = 0;
    for (bool tcad : {true, false}) {
      auto db = generateNetlist(entry.config);
      PlacerOptions options;
      options.gp = dreamplaceFastGp();
      options.gp.tcadMuVariant = tcad;
      results[i] = placeDesign(*db, options);
      ++i;
    }
    const double delta =
        100.0 * (results[0].hpwl - results[1].hpwl) / results[1].hpwl;
    std::printf("%-10s | %12.4e %7d | %12.4e %7d | %+8.2f%%\n",
                entry.name.c_str(), results[0].hpwl,
                results[0].gpIterations, results[1].hpwl,
                results[1].gpIterations, delta);
    ratio *= results[0].hpwl / results[1].hpwl;
    iter_tcad += results[0].gpIterations;
    iter_orig += results[1].gpIterations;
    ++n;
  }
  std::printf("\ngeomean HPWL ratio (tcad/original): %.4f\n",
              std::pow(ratio, 1.0 / n));
  std::printf("total iterations: tcad %ld vs original %ld\n", iter_tcad,
              iter_orig);
  return 0;
}
