// Table IV reproduction: native-toolkit solvers vs Nesterov, float64.
//
// Paper shape: Adam reaches slightly better (~-0.3%) HPWL than Nesterov
// but takes ~1.8x GP time; SGD+momentum is ~1.2% worse at ~1.7x time.
// Learning-rate decay per design mirrors the paper's per-design tuning.
#include <vector>

#include "bench_util.h"
#include "gen/netlist_generator.h"

int main() {
  using namespace dreamplace;
  using namespace dreamplace::bench;

  const double scale = benchScale(0.01);
  std::printf("Table IV: solver comparison on ISPD 2005 suite "
              "(scale %.3f, float64)\n\n", scale);

  struct SolverConfig {
    SolverKind kind;
    double lr;
    double decaySmall;  ///< For the adaptec-sized designs.
    double decayLarge;  ///< For the bigblue3/4-sized designs (paper uses
                        ///< slower decay on the big ones).
  };
  // Learning rates are in bin-size units (the GP scales them by the bin
  // dimension); tuned once on adaptec1 as the paper tuned per design.
  const SolverConfig solvers[] = {
      {SolverKind::kNesterov, 0.0, 1.0, 1.0},
      {SolverKind::kAdam, 2.0, 0.995, 0.997},
      {SolverKind::kSgdMomentum, 3.0, 0.995, 0.997},
  };

  const auto suite = ispd2005Suite(scale);
  std::printf("%-10s |", "design");
  for (const auto& s : solvers) {
    std::printf(" %12s %8s %7s |", solverName(s.kind), "GP(s)", "decay");
  }
  std::printf("\n");

  std::vector<std::vector<FlowRow>> rows(3);
  for (const SuiteEntry& entry : suite) {
    std::printf("%-10s |", entry.name.c_str());
    const bool large = entry.config.numCells > 8000;
    for (int s = 0; s < 3; ++s) {
      auto db = generateNetlist(entry.config);
      PlacerOptions options;
      options.gp.solver = solvers[s].kind;
      options.gp.lr = solvers[s].lr;
      options.gp.lrDecay =
          large ? solvers[s].decayLarge : solvers[s].decaySmall;
      options.gp.maxIterations = 2000;
      FlowRow row;
      row.design = entry.name;
      row.result = placeDesign(*db, options);
      rows[s].push_back(row);
      std::printf(" %12.4e %8.2f %7.3f |", row.result.hpwl,
                  row.result.gpSeconds, options.gp.lrDecay);
    }
    std::printf("\n");
  }

  std::printf("\n=== ratios vs Nesterov ===\n");
  printRatio(rows[1], rows[0], "Adam");
  printRatio(rows[2], rows[0], "SGD Momentum");
  return 0;
}
