// Timing-driven placement via net weighting (paper Sec. III-G).
//
// Without timing libraries, long nets are the delay proxy: the flow
// iteratively boosts the weights of the longest nets and re-runs GP,
// trading a bounded amount of total HPWL for a shorter critical tail —
// the same mechanism a slack-driven weighter would use.
//
//   ./timing_netweight [num_cells] [rounds]
#include <cstdio>
#include <cstdlib>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "place/net_weighting.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  GeneratorConfig config;
  config.numCells = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.seed = 19;

  NetWeightingOptions options;
  options.rounds = argc > 2 ? std::atoi(argv[2]) : 3;

  // Baseline: plain GP through the same code path (0 rounds).
  double base_hpwl = 0;
  double base_tail = 0;
  {
    auto db = generateNetlist(config);
    NetWeightingOptions plain = options;
    plain.rounds = 0;
    const auto r = netWeightingPlace<double>(*db, plain);
    base_hpwl = r.hpwl;
    base_tail = r.tailNetHpwl;
    std::printf("baseline    : HPWL %.4e  tail-5%% net %.4e  max net %.4e\n",
                r.hpwl, r.tailNetHpwl, r.maxNetHpwl);
  }

  auto db = generateNetlist(config);
  const auto r = netWeightingPlace<double>(*db, options);
  std::printf("net-weighted: HPWL %.4e  tail-5%% net %.4e  max net %.4e\n",
              r.hpwl, r.tailNetHpwl, r.maxNetHpwl);
  std::printf("\ntail trace per round:");
  for (double t : r.tailTrace) {
    std::printf(" %.4e", t);
  }
  std::printf("\nresult: tail %.1f%% shorter for %.1f%% HPWL cost\n",
              100.0 * (1.0 - r.tailNetHpwl / base_tail),
              100.0 * (r.hpwl / base_hpwl - 1.0));
  return 0;
}
