// Fence-region placement (paper Sec. III-G): constrain two groups of
// cells to the left and right thirds of the die using one electric field
// per region, and visualize the outcome as occupancy statistics.
//
//   ./fence_regions [num_cells] [seed]
#include <cstdio>
#include <cstdlib>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gp/global_placer.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  GeneratorConfig config;
  config.numCells = argc > 1 ? std::atoi(argv[1]) : 1500;
  config.utilization = 0.5;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  auto db = generateNetlist(config);
  const Box<Coord>& die = db->dieArea();

  // Two fences: left and right thirds. Every third cell is pinned to a
  // fence, the rest roam the default region.
  GlobalPlacerOptions options;
  const double w3 = die.width() / 3.0;
  options.fences.push_back({{die.xl, die.yl, die.xl + w3, die.yh}});
  options.fences.push_back({{die.xh - w3, die.yl, die.xh, die.yh}});
  options.cellFence.resize(db->numMovable());
  for (Index i = 0; i < db->numMovable(); ++i) {
    options.cellFence[i] = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 2 : 0;
  }

  GlobalPlacer<double> placer(*db, options);
  const auto result = placer.run();

  // Report how the three populations distribute over the three bands.
  int counts[3][3] = {};
  for (Index i = 0; i < db->numMovable(); ++i) {
    const double cx = db->cellX(i) + db->cellWidth(i) / 2;
    const int band = cx < die.xl + w3 ? 0 : (cx > die.xh - w3 ? 2 : 1);
    ++counts[options.cellFence[i]][band];
  }
  std::printf("\nGP hpwl %.4e, overflow %.3f\n", result.hpwl,
              result.overflow);
  std::printf("%-16s %10s %10s %10s\n", "group", "left band", "middle",
              "right band");
  const char* names[3] = {"default", "fence 1 (left)", "fence 2 (right)"};
  for (int g = 0; g < 3; ++g) {
    std::printf("%-16s %10d %10d %10d\n", names[g], counts[g][0],
                counts[g][1], counts[g][2]);
  }
  // Fence members must sit entirely in their bands.
  const bool ok = counts[1][1] == 0 && counts[1][2] == 0 &&
                  counts[2][0] == 0 && counts[2][1] == 0;
  std::printf("fence containment: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
