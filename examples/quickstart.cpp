// Quickstart: generate a small synthetic design, run the full DREAMPlace
// flow (GP -> LG -> DP), and report quality metrics.
//
//   ./quickstart [num_cells] [seed]
//
// This is the 60-second tour of the public API: the netlist generator
// stands in for a Bookshelf benchmark (swap in readBookshelf() for real
// contest data), placeDesign() runs the whole flow, and the metrics
// helpers verify the result.
#include <cstdio>
#include <cstdlib>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "place/placer.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  GeneratorConfig config;
  config.designName = "quickstart";
  config.numCells = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.utilization = 0.7;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  auto db = generateNetlist(config);

  std::printf("design: %d movable cells, %d nets, %d pins, die %.0f x %.0f\n",
              db->numMovable(), db->numNets(), db->numPins(),
              db->dieArea().width(), db->dieArea().height());

  PlacerOptions options;
  options.precision = Precision::kFloat64;
  options.gp.verbose = true;

  const FlowResult result = placeDesign(*db, options);

  std::printf("\n=== quickstart result ===\n");
  std::printf("GP iterations : %d\n", result.gpIterations);
  std::printf("HPWL after GP : %.4e\n", result.hpwlGp);
  std::printf("HPWL after LG : %.4e (+%.2f%%)\n", result.hpwlLegal,
              100.0 * (result.hpwlLegal / result.hpwlGp - 1.0));
  std::printf("HPWL final    : %.4e (DP %+.2f%%)\n", result.hpwl,
              100.0 * (result.hpwl / result.hpwlLegal - 1.0));
  std::printf("overflow      : %.4f\n", result.overflow);
  std::printf("legal         : %s\n", result.legal ? "yes" : "NO");
  std::printf("runtime       : GP %.2fs  LG %.2fs  DP %.2fs\n",
              result.gpSeconds, result.lgSeconds, result.dpSeconds);
  return result.legal ? 0 : 1;
}
