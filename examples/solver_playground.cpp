// Solver playground (paper Sec. IV-C / Table IV): place the same design
// with each gradient-descent engine — Nesterov with Lipschitz line search
// (the ePlace solver), Adam, SGD+momentum, and RMSProp — and compare final
// HPWL and GP runtime. This is the "easily swap solvers" benefit of the
// placement-as-training framing.
//
//   ./solver_playground [num_cells] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "place/placer.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  GeneratorConfig config;
  config.numCells = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  struct Entry {
    SolverKind kind;
    double lr;
    double decay;
  };
  const Entry entries[] = {
      {SolverKind::kNesterov, 0.0, 1.0},
      {SolverKind::kAdam, 2.0, 0.995},
      {SolverKind::kSgdMomentum, 3.0, 0.995},
      {SolverKind::kRmsProp, 1.0, 0.997},
  };

  std::printf("%-14s %14s %10s %8s %10s\n", "solver", "HPWL", "GP(s)",
              "iters", "overflow");
  for (const Entry& entry : entries) {
    auto db = generateNetlist(config);  // same seed => same design
    PlacerOptions options;
    options.gp.solver = entry.kind;
    options.gp.lr = entry.lr;
    options.gp.lrDecay = entry.decay;
    options.gp.maxIterations = 1500;
    Timer timer;
    const FlowResult result = placeDesign(*db, options);
    std::printf("%-14s %14.4e %10.2f %8d %10.4f\n", solverName(entry.kind),
                result.hpwl, result.gpSeconds, result.gpIterations,
                result.overflow);
  }
  return 0;
}
