// ISPD-style benchmark flow: materialize a contest-suite design to
// Bookshelf files on disk, read it back (exactly how a real contest
// benchmark would enter the flow), place it, and write the .pl result.
//
//   ./ispd_flow [design_name] [scale] [out_dir]
//
// design_name is any entry of the ISPD2005/industrial/DAC2012 presets
// (default adaptec1); scale scales the paper's cell counts (default 0.01).
// To run a real benchmark instead, point `aux` at its .aux file.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gen/suites.h"
#include "io/bookshelf_reader.h"
#include "io/bookshelf_writer.h"
#include "place/placer.h"

int main(int argc, char** argv) {
  using namespace dreamplace;
  namespace fs = std::filesystem;

  const std::string design = argc > 1 ? argv[1] : "adaptec1";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;
  const std::string out_dir =
      argc > 3 ? argv[3] : (fs::temp_directory_path() / "ispd_flow").string();

  // 1. Generate the suite entry and persist it as Bookshelf files.
  const SuiteEntry entry = findSuiteEntry(design, scale);
  auto generated = generateNetlist(entry.config);
  writeBookshelf(*generated, out_dir, design);
  generated.reset();

  // 2. Load from disk — the same path a real contest benchmark takes.
  const std::string aux = out_dir + "/" + design + ".aux";
  auto db = readBookshelf(aux);
  std::printf("loaded %s: %d cells (%d movable), %d nets\n", design.c_str(),
              db->numCells(), db->numMovable(), db->numNets());

  // 3. Place.
  PlacerOptions options;
  const FlowResult result = placeDesign(*db, options);

  // 4. Write the placement result next to the benchmark.
  writePlacement(*db, out_dir + "/" + design + ".result.pl");

  std::printf("\n%-10s HPWL %.4e  GP %.1fs  LG %.1fs  DP %.1fs  legal=%d\n",
              design.c_str(), result.hpwl, result.gpSeconds,
              result.lgSeconds, result.dpSeconds, result.legal ? 1 : 0);
  std::printf("placement written to %s/%s.result.pl\n", out_dir.c_str(),
              design.c_str());
  return result.legal ? 0 : 1;
}
