// Routability-driven placement (paper Sec. III-F / Table V): run the cell
// inflation loop against the built-in grid global router on a DAC2012-like
// design and report the contest metrics (RC, sHPWL).
//
//   ./routability_flow [design_name] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "gen/suites.h"
#include "place/placer.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  const std::string design = argc > 1 ? argv[1] : "SB19";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

  const SuiteEntry entry = findSuiteEntry(design, scale);
  auto db = generateNetlist(entry.config);

  PlacerOptions options;
  options.precision = Precision::kFloat32;  // Table V uses float32
  options.routability = true;
  options.routabilityOptions.router.gridX = 48;
  options.routabilityOptions.router.gridY = 48;
  options.routabilityOptions.router.capacityFactor = 0.8;

  // Baseline congestion: route the wirelength-only placement first.
  PlacerOptions plain = options;
  plain.routability = false;
  {
    auto baseline_db = generateNetlist(entry.config);
    placeDesign(*baseline_db, plain);
    GlobalRouter router(options.routabilityOptions.router);
    const auto report = computeCongestion(router.route(*baseline_db));
    std::printf("baseline (no inflation): HPWL %.4e RC %.2f sHPWL %.4e\n",
                hpwl(*baseline_db), report.rc,
                scaledHpwl(hpwl(*baseline_db), report.rc));
  }

  const FlowResult result = placeDesign(*db, options);
  std::printf("routability-driven:      HPWL %.4e RC %.2f sHPWL %.4e\n",
              result.hpwl, result.rc, result.sHpwl);
  std::printf("runtime: NL %.1fs GR %.1fs LG %.1fs DP %.1fs\n",
              result.nlSeconds, result.grSeconds, result.lgSeconds,
              result.dpSeconds);
  return result.legal ? 0 : 1;
}
